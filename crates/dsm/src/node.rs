//! Per-node DSM protocol state.
//!
//! One [`NodeState`] exists per simulated processor, shared (via
//! `Arc<Mutex<..>>`) between the node's application thread and its service
//! handler. It holds the node's memory copy, its consistency knowledge
//! (interval records, vector times, pending invalidations, diff store) and
//! any manager roles homed on this node.

use std::collections::BTreeMap;
use std::sync::Arc;

use vopp_page::{Diff, IntervalId, IntervalRecord, NodeMemory, PageId, PageState, VTime};
use vopp_sim::ProcId;

use crate::cost::CostModel;
use crate::homes::{BarrierHome, LockHome, ViewHome};
use crate::layout::{Layout, ViewId};
use crate::stats::NodeStats;

/// Which DSM implementation a run uses (the paper's three systems).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Diff-based Lazy Release Consistency: the TreadMarks protocol.
    /// Traditional lock/barrier programs; barriers maintain consistency.
    LrcD,
    /// Diff-based View-based Consistency: same implementation techniques
    /// (twins, diffs, invalidate, fault-time diff requests) but consistency
    /// is view-scoped; barriers only synchronize.
    VcD,
    /// View-based Consistency with the integrated-diff update protocol:
    /// a single merged diff per page, piggy-backed on the view grant.
    VcSd,
    /// `VC_sd` retargeted at an RDMA-capable fabric: view data moves by
    /// one-sided writes into preposted per-node buffers (no request/reply
    /// round trip, no remote CPU on the data path), and release diffs are
    /// written to the home and applied there asynchronously — off the
    /// acquirer's critical path. Identical consistency semantics to
    /// [`Protocol::VcSd`]; only the transport and the CPU accounting of
    /// diff application differ.
    VcRdma,
    /// Home-based Lazy Release Consistency (extension; the authors'
    /// companion work on homeless vs. home-based protocols): every page has
    /// a home node to which diffs are flushed eagerly at interval end;
    /// faults fetch the whole up-to-date page from the home with a single
    /// round trip.
    Hlrc,
    /// Scope Consistency (related work, paper §4): lock acquires receive
    /// only the updates made under that lock's *scope* (dynamically — the
    /// pages dirtied in intervals closed by its releases); barriers merge
    /// all scopes globally, exactly like an LRC barrier. Weaker than LRC:
    /// updates made under a different lock are not visible until a barrier.
    ScC,
}

impl Protocol {
    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::LrcD => "LRC_d",
            Protocol::VcD => "VC_d",
            Protocol::VcSd => "VC_sd",
            Protocol::VcRdma => "VC_rdma",
            Protocol::Hlrc => "HLRC_d",
            Protocol::ScC => "ScC_d",
        }
    }

    /// True for the VOPP protocols.
    pub fn is_vc(self) -> bool {
        matches!(self, Protocol::VcD | Protocol::VcSd | Protocol::VcRdma)
    }

    /// True for the traditional lock/barrier protocols (homeless or
    /// home-based LRC, and Scope Consistency).
    pub fn is_lrc_family(self) -> bool {
        matches!(self, Protocol::LrcD | Protocol::Hlrc | Protocol::ScC)
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A diff retained by its creator, served on [`crate::msg::Req::DiffReq`].
/// The diff is immutable once stored and shared by `Arc` with every reply
/// that serves it, instead of deep-copied per request.
#[derive(Debug, Clone)]
pub struct StoredDiff {
    /// Interval the diff belongs to.
    pub id: IntervalId,
    /// Happens-before scalar for application ordering.
    pub lamport: u64,
    /// The modifications themselves.
    pub diff: Arc<Diff>,
}

/// An invalidation waiting to be resolved by a fault-time diff fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingFetch {
    /// Interval whose diff must be fetched from its owner.
    pub id: IntervalId,
    /// Happens-before scalar for application ordering.
    pub lamport: u64,
}

/// All protocol state of one node.
pub struct NodeState {
    /// This node's processor id.
    pub me: ProcId,
    /// Cluster size.
    pub n: usize,
    /// The DSM implementation in use.
    pub protocol: Protocol,
    /// CPU cost model.
    pub cost: CostModel,
    /// The shared-memory layout (identical on all nodes).
    pub layout: Arc<Layout>,
    /// The node's copy of shared memory.
    pub mem: NodeMemory,

    // ---- interval / knowledge tracking (LRC, also ids for VC) ----
    /// Every interval record this node possesses, keyed `(owner, seq)`.
    /// Per-owner prefix-closed. Records are immutable once logged and shared
    /// by `Arc` across the log, grants and releases.
    pub logged: BTreeMap<(ProcId, u32), Arc<IntervalRecord>>,
    /// Per-owner count of records possessed.
    pub logged_vt: VTime,
    /// Per-owner count of intervals whose effects are enforced on `mem`
    /// (invalidations issued). Always dominated by `logged_vt`.
    pub applied_vt: VTime,
    /// Scalar happens-before clock, orders diff application.
    pub lamport: u64,
    /// Lower bound of each home's `logged_vt`, to size release deltas.
    pub home_sent_vt: BTreeMap<ProcId, VTime>,
    /// Per-page invalidations awaiting a fault-time fetch.
    pub pending: BTreeMap<PageId, Vec<PendingFetch>>,
    /// Per-page bitmask of every writer this node has ever learned of
    /// (logged interval records plus its own writes). Monotone knowledge:
    /// gates the whole-page fetch escape hatch, which is only sound when
    /// the page's entire write history has a single owner — the pending
    /// list alone can miss concurrent writers on false-shared pages.
    pub page_writers: Vec<u64>,
    /// Diffs created locally, served to faulting peers.
    pub diff_store: BTreeMap<PageId, Vec<StoredDiff>>,

    // ---- VOPP state ----
    /// Per view: latest version whose content is reflected locally.
    pub view_applied: Vec<u32>,
    /// The exclusively-held view, if any (non-nestable, paper §2).
    pub held_write: Option<ViewId>,
    /// Read-held views with nesting counts (nestable, paper §2).
    pub held_read: BTreeMap<ViewId, u32>,

    // ---- Scope Consistency state ----
    /// Per lock: the latest scope version whose updates are enforced.
    pub lock_applied: BTreeMap<u32, u32>,
    /// Intervals already enforced through a scoped grant (so the global
    /// merge at barriers does not re-invalidate their pages).
    pub scoped_applied: std::collections::BTreeSet<IntervalId>,

    // ---- statistics ----
    /// Counters for the paper's table rows.
    pub stats: NodeStats,

    // ---- manager roles homed here ----
    /// Locks managed by this node.
    pub locks: BTreeMap<u32, LockHome>,
    /// Barrier-manager state (active on node 0).
    pub barrier: BarrierHome,
    /// Views managed by this node.
    pub views: BTreeMap<ViewId, ViewHome>,
}

impl NodeState {
    /// Fresh state for processor `me` of `n`. `pool_cap` bounds the node's
    /// page-recycling free list (see [`ClusterConfig::page_pool_cap`]).
    ///
    /// [`ClusterConfig::page_pool_cap`]: crate::runtime::ClusterConfig::page_pool_cap
    pub fn new(
        me: ProcId,
        n: usize,
        protocol: Protocol,
        cost: CostModel,
        layout: Arc<Layout>,
        pool_cap: usize,
    ) -> NodeState {
        NodeState {
            me,
            n,
            protocol,
            cost,
            mem: NodeMemory::with_pool_capacity(layout.npages(), pool_cap),
            logged: BTreeMap::new(),
            logged_vt: VTime::zero(n),
            applied_vt: VTime::zero(n),
            lamport: 0,
            home_sent_vt: BTreeMap::new(),
            pending: BTreeMap::new(),
            page_writers: vec![0; layout.npages()],
            diff_store: BTreeMap::new(),
            view_applied: vec![0; layout.nviews()],
            held_write: None,
            held_read: BTreeMap::new(),
            lock_applied: BTreeMap::new(),
            scoped_applied: std::collections::BTreeSet::new(),
            stats: NodeStats::default(),
            locks: BTreeMap::new(),
            barrier: BarrierHome::default(),
            views: BTreeMap::new(),
            layout,
        }
    }

    /// The node managing view `v`: its declared home (normally the primary
    /// writer) or round-robin — either way consistency maintenance is
    /// distributed across nodes, which the paper credits for VC's barrier
    /// advantage.
    pub fn view_home(&self, v: ViewId) -> ProcId {
        match self.layout.view(v).home {
            Some(h) => h % self.n,
            None => v as usize % self.n,
        }
    }

    /// The node managing lock `l`.
    pub fn lock_home(&self, l: u32) -> ProcId {
        l as usize % self.n
    }

    /// The home of page `p` under HLRC (round-robin assignment).
    pub fn page_home(&self, p: PageId) -> ProcId {
        p % self.n
    }

    /// Close the current write interval: extract diffs, log the record,
    /// retain the diffs for serving. Returns the new record (if any page was
    /// dirty) and the number of diffs created (for CPU accounting).
    pub fn end_interval(&mut self) -> (Option<Arc<IntervalRecord>>, usize) {
        let (rec, diffs) = self.end_interval_with_diffs();
        let n = diffs.len();
        (rec, n)
    }

    /// Like [`NodeState::end_interval`] but also hands back the diffs, for
    /// protocols that ship them eagerly (HLRC home flushes). The diffs are
    /// shared with the diff store, not copied.
    #[allow(clippy::type_complexity)]
    pub fn end_interval_with_diffs(
        &mut self,
    ) -> (Option<Arc<IntervalRecord>>, Vec<(PageId, Arc<Diff>)>) {
        let diffs: Vec<(PageId, Arc<Diff>)> = self
            .mem
            .end_interval()
            .into_iter()
            .map(|(p, d)| (p, Arc::new(d)))
            .collect();
        if diffs.is_empty() {
            return (None, Vec::new());
        }
        let ndiffs = diffs.len();
        let seq = self.logged_vt.bump(self.me);
        self.applied_vt.set(self.me, seq);
        self.lamport += 1;
        let id = IntervalId {
            owner: self.me,
            seq,
        };
        let pages: Vec<PageId> = diffs.iter().map(|(p, _)| *p).collect();
        for (p, diff) in &diffs {
            self.diff_store.entry(*p).or_default().push(StoredDiff {
                id,
                lamport: self.lamport,
                diff: Arc::clone(diff),
            });
        }
        self.stats.diffs_created += ndiffs as u64;
        let rec = Arc::new(IntervalRecord {
            id,
            vt: self.logged_vt.clone(),
            lamport: self.lamport,
            pages,
        });
        self.logged.insert((self.me, seq), Arc::clone(&rec));
        (Some(rec), diffs)
    }

    /// Close the current write interval for a VOPP view release: like
    /// [`NodeState::end_interval`] but the record is *not* entered into the
    /// LRC log — view history lives at the view home, keyed by version, and
    /// must not leak into barrier/lock consistency traffic.
    ///
    /// Returns `(interval id, lamport, dirty pages, diffs)` and the diff
    /// count for CPU accounting.
    #[allow(clippy::type_complexity)]
    pub fn end_interval_vc(
        &mut self,
    ) -> (
        Option<(IntervalId, u64, Vec<PageId>, Vec<(PageId, Arc<Diff>)>)>,
        usize,
    ) {
        let diffs: Vec<(PageId, Arc<Diff>)> = self
            .mem
            .end_interval()
            .into_iter()
            .map(|(p, d)| (p, Arc::new(d)))
            .collect();
        if diffs.is_empty() {
            return (None, 0);
        }
        let ndiffs = diffs.len();
        let seq = self.logged_vt.bump(self.me);
        self.applied_vt.set(self.me, seq);
        self.lamport += 1;
        let id = IntervalId {
            owner: self.me,
            seq,
        };
        let pages: Vec<PageId> = diffs.iter().map(|(p, _)| *p).collect();
        for (p, diff) in &diffs {
            self.diff_store.entry(*p).or_default().push(StoredDiff {
                id,
                lamport: self.lamport,
                diff: Arc::clone(diff),
            });
        }
        self.stats.diffs_created += ndiffs as u64;
        (Some((id, self.lamport, pages, diffs)), ndiffs)
    }

    /// Records this node possesses that `vt` does not cover. The returned
    /// records are `Arc`-shared with the log (no deep copies).
    pub fn delta_since(&self, vt: &VTime) -> Vec<Arc<IntervalRecord>> {
        let mut out = Vec::new();
        for owner in 0..self.n {
            let have = if vt.is_empty() { 0 } else { vt.get(owner) };
            let lo = (owner, have + 1);
            let hi = (owner, u32::MAX);
            for rec in self.logged.range(lo..=hi).map(|(_, r)| r) {
                out.push(Arc::clone(rec));
            }
        }
        out
    }

    /// Records of this node's own intervals (and anything else new) that the
    /// given home has not yet been sent. Advances the sent-estimate.
    pub fn delta_for_home(&mut self, home: ProcId) -> Vec<Arc<IntervalRecord>> {
        let sent = self
            .home_sent_vt
            .entry(home)
            .or_insert_with(|| VTime::zero(self.n))
            .clone();
        let delta = self.delta_since(&sent);
        let lv = self.logged_vt.clone();
        self.home_sent_vt.insert(home, lv);
        delta
    }

    /// Note that `home` proved knowledge of everything under `vt` (it sent a
    /// grant with that vector time).
    pub fn note_home_knows(&mut self, home: ProcId, vt: &VTime) {
        if vt.is_empty() {
            return;
        }
        self.home_sent_vt
            .entry(home)
            .or_insert_with(|| VTime::zero(self.n))
            .join_from(vt);
    }

    /// Merge received interval records into the passive log (no effect on
    /// memory until this node's own next acquire applies them).
    pub fn merge_logged(&mut self, records: &[Arc<IntervalRecord>]) {
        for r in records {
            let key = (r.id.owner, r.id.seq);
            let seq = r.id.seq;
            self.logged.entry(key).or_insert_with(|| Arc::clone(r));
            if self.logged_vt.get(r.id.owner) < seq {
                self.logged_vt.set(r.id.owner, seq);
            }
            for &page in &r.pages {
                self.note_page_writer(page, r.id.owner);
            }
        }
    }

    /// Record that `owner` has written `page` at some point.
    pub fn note_page_writer(&mut self, page: PageId, owner: ProcId) {
        self.page_writers[page] |= match u32::try_from(owner) {
            Ok(o) if o < 64 => 1 << o,
            // Beyond the bitmask width: pessimize to "many writers", which
            // only disables an optimization.
            _ => u64::MAX,
        };
    }

    /// Whether `owner` is the only writer ever known for `page` — the
    /// soundness condition of the LRC whole-page fetch escape hatch.
    pub fn page_sole_writer(&self, page: PageId, owner: ProcId) -> bool {
        matches!(u32::try_from(owner), Ok(o) if o < 64 && self.page_writers[page] == 1 << o)
    }

    /// Lamport receive rule.
    pub fn lamport_sync(&mut self, l: u64) {
        self.lamport = self.lamport.max(l) + 1;
    }

    /// LRC: absorb a lock grant / barrier release — log the records, then
    /// enforce consistency up to `vt` by invalidating every page written in
    /// intervals this node has not yet applied.
    pub fn absorb_lrc_grant(&mut self, records: &[Arc<IntervalRecord>], vt: &VTime, lamport: u64) {
        self.merge_logged(records);
        self.lamport_sync(lamport);
        if vt.is_empty() {
            return;
        }
        for owner in 0..self.n {
            if owner == self.me {
                continue;
            }
            let from = self.applied_vt.get(owner) + 1;
            let to = vt.get(owner);
            for seq in from..=to {
                let rec = self
                    .logged
                    .get(&(owner, seq))
                    .map(Arc::clone)
                    .unwrap_or_else(|| panic!("node {} missing record ({owner},{seq})", self.me));
                for &page in &rec.pages {
                    debug_assert_ne!(
                        self.mem.state(page),
                        PageState::Dirty,
                        "invalidation hit a live twin: interval not closed before sync"
                    );
                    if self.protocol == Protocol::Hlrc && self.page_home(page) == self.me {
                        // The home's copy is kept current by eager flushes;
                        // it is never invalidated on its own node.
                        continue;
                    }
                    if self.protocol == Protocol::ScC && self.scoped_applied.contains(&rec.id) {
                        // Already enforced through a scoped lock grant.
                        continue;
                    }
                    self.mem.invalidate(page);
                    self.pending.entry(page).or_default().push(PendingFetch {
                        id: rec.id,
                        lamport: rec.lamport,
                    });
                }
            }
        }
        self.applied_vt.join_from(vt);
    }

    /// VC: absorb a view grant.
    /// * `VC_d`: log view history records and invalidate their pages; diffs
    ///   are fetched on fault.
    /// * `VC_sd`: apply the piggy-backed integrated diffs immediately.
    pub fn vc_absorb_grant(
        &mut self,
        view: ViewId,
        records: &[Arc<crate::msg::ViewRecord>],
        diffs: &[(PageId, Arc<Diff>)],
        version: u32,
        lamport: u64,
    ) {
        self.lamport_sync(lamport);
        for r in records {
            // In steady state the home never echoes this node's own
            // releases (it filters on `have`). After a crash this node
            // re-acquires with `have == 0` and the full history — its own
            // records included — comes back; the diffs for those records
            // are then served out of this node's own durable diff store
            // like anyone else's.
            for &page in &r.pages {
                debug_assert_ne!(self.mem.state(page), PageState::Dirty);
                self.mem.invalidate(page);
                self.pending.entry(page).or_default().push(PendingFetch {
                    id: r.id,
                    lamport: r.lamport,
                });
            }
        }
        for (page, diff) in diffs {
            debug_assert_ne!(self.mem.state(*page), PageState::Dirty);
            self.mem.apply_diff(*page, diff);
            self.mem.validate(*page);
            self.stats.diffs_applied += 1;
        }
        let va = &mut self.view_applied[view as usize];
        *va = (*va).max(version);
    }

    /// Crash this node's volatile protocol state, leaving its durable state
    /// intact. Lost: every local page copy of every view (content restarts
    /// from the zero page), all pending invalidations, and all knowledge of
    /// view versions (`view_applied` back to 0, so the next acquire pulls
    /// the full history from the home). Kept: the node's own interval log
    /// and diff store — the write-ahead log its released intervals were
    /// persisted to, which peers (and this node itself, on re-fetch) read
    /// diffs from — plus the lamport clock and any manager roles homed
    /// here, which the model treats as replicated directory state.
    ///
    /// Only legal between requests: no dirty pages, no held views. Returns
    /// the number of materialized page buffers lost.
    pub fn crash_volatile(&mut self) -> u64 {
        assert!(
            self.held_write.is_none() && self.held_read.is_empty(),
            "node {} crashed while holding a view",
            self.me
        );
        let mut dropped = 0u64;
        let layout = self.layout.clone();
        for def in layout.views() {
            for page in def.pages.clone() {
                // Invalidations queued for these pages refer to content the
                // crash just destroyed; the `have == 0` re-acquire restores
                // everything, so stale fetch plans must not survive.
                self.pending.remove(&page);
                if self.mem.crash_page(page) {
                    dropped += 1;
                }
            }
            self.view_applied[def.id as usize] = 0;
        }
        dropped
    }

    /// Scope Consistency: absorb a scoped lock grant — invalidate the pages
    /// of each release record not yet enforced on this node.
    pub fn scc_absorb(&mut self, records: &[Arc<crate::msg::ViewRecord>], lamport: u64) {
        self.lamport_sync(lamport);
        for r in records {
            if r.id.owner == self.me || !self.scoped_applied.insert(r.id) {
                continue;
            }
            for &page in &r.pages {
                debug_assert_ne!(self.mem.state(page), PageState::Dirty);
                self.mem.invalidate(page);
                self.pending.entry(page).or_default().push(PendingFetch {
                    id: r.id,
                    lamport: r.lamport,
                });
            }
        }
    }

    /// Serve a diff request: look up the stored diffs of `page` for the
    /// requested intervals. Idempotent (pure read); the reply shares the
    /// stored diffs by `Arc` instead of copying them.
    pub fn serve_diffs(
        &self,
        page: PageId,
        intervals: &[IntervalId],
    ) -> Vec<(IntervalId, u64, Arc<Diff>)> {
        let Some(store) = self.diff_store.get(&page) else {
            panic!("node {} has no diffs for page {page}", self.me)
        };
        intervals
            .iter()
            .map(|id| {
                let sd = store
                    .iter()
                    .find(|sd| sd.id == *id)
                    .unwrap_or_else(|| panic!("node {} missing diff {id:?} page {page}", self.me));
                (sd.id, sd.lamport, Arc::clone(&sd.diff))
            })
            .collect()
    }

    /// Take (and clear) the pending fetches of a faulted page, deduplicated
    /// and in application order.
    pub fn take_pending(&mut self, page: PageId) -> Vec<PendingFetch> {
        let mut v = self.pending.remove(&page).unwrap_or_default();
        v.sort_by_key(|f| (f.lamport, f.id.owner, f.id.seq));
        v.dedup_by_key(|f| f.id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(me: ProcId, n: usize) -> NodeState {
        let mut l = Layout::new();
        let _ = l.alloc(4 * vopp_page::PAGE_SIZE, 1);
        NodeState::new(me, n, Protocol::LrcD, CostModel::default(), l.freeze(), 128)
    }

    #[test]
    fn end_interval_logs_and_stores() {
        let mut a = mk(0, 2);
        a.mem.note_write(1);
        a.mem.page_mut(1).set_word(0, 5);
        let (rec, nd) = a.end_interval();
        let rec = rec.unwrap();
        assert_eq!(nd, 1);
        assert_eq!(rec.id, IntervalId { owner: 0, seq: 1 });
        assert_eq!(rec.pages, vec![1]);
        assert_eq!(a.logged_vt.get(0), 1);
        assert_eq!(a.applied_vt.get(0), 1);
        assert!(a.diff_store.contains_key(&1));
        // Empty interval produces nothing.
        let (rec2, nd2) = a.end_interval();
        assert!(rec2.is_none());
        assert_eq!(nd2, 0);
        assert_eq!(a.logged_vt.get(0), 1);
    }

    #[test]
    fn grant_absorption_invalidates_and_pends() {
        let mut a = mk(0, 2);
        let mut b = mk(1, 2);
        b.mem.note_write(2);
        b.mem.page_mut(2).set_word(3, 9);
        let (rec, _) = b.end_interval();
        let rec = rec.unwrap();

        a.absorb_lrc_grant(std::slice::from_ref(&rec), &rec.vt, rec.lamport);
        assert_eq!(a.mem.state(2), PageState::Invalid);
        assert_eq!(a.applied_vt.get(1), 1);
        let pend = a.take_pending(2);
        assert_eq!(pend.len(), 1);
        assert_eq!(pend[0].id, rec.id);
        // Fetch from b and apply.
        let items = b.serve_diffs(2, &[rec.id]);
        a.mem.apply_diff(2, items[0].2.as_ref());
        a.mem.validate(2);
        assert_eq!(a.mem.page(2).word(3), 9);
    }

    #[test]
    fn delta_for_home_is_incremental() {
        let mut a = mk(0, 2);
        a.mem.note_write(0);
        a.mem.page_mut(0).set_word(0, 1);
        a.end_interval();
        let d1 = a.delta_for_home(1);
        assert_eq!(d1.len(), 1);
        let d2 = a.delta_for_home(1);
        assert!(d2.is_empty(), "same records must not be re-sent");
        a.mem.note_write(0);
        a.mem.page_mut(0).set_word(0, 2);
        a.end_interval();
        let d3 = a.delta_for_home(1);
        assert_eq!(d3.len(), 1);
        assert_eq!(d3[0].id.seq, 2);
    }

    #[test]
    fn absorb_is_idempotent_per_interval() {
        let mut a = mk(0, 2);
        let mut b = mk(1, 2);
        b.mem.note_write(2);
        b.mem.page_mut(2).set_word(0, 1);
        let (rec, _) = b.end_interval();
        let rec = rec.unwrap();
        a.absorb_lrc_grant(std::slice::from_ref(&rec), &rec.vt, rec.lamport);
        let first = a.take_pending(2);
        assert_eq!(first.len(), 1);
        // Duplicate grant: already-applied intervals add no pending work.
        a.absorb_lrc_grant(std::slice::from_ref(&rec), &rec.vt, rec.lamport);
        assert!(a.take_pending(2).is_empty());
    }

    #[test]
    fn pending_sorted_and_deduped() {
        let mut a = mk(0, 4);
        let f = |owner, seq, lam| PendingFetch {
            id: IntervalId { owner, seq },
            lamport: lam,
        };
        a.pending
            .entry(7)
            .or_default()
            .extend([f(2, 1, 10), f(1, 1, 3), f(2, 1, 10), f(3, 2, 7)]);
        let got = a.take_pending(7);
        assert_eq!(got, vec![f(1, 1, 3), f(3, 2, 7), f(2, 1, 10)]);
        assert!(a.take_pending(7).is_empty());
    }

    #[test]
    fn merge_logged_prefix_extends_vt() {
        let mut a = mk(0, 2);
        let rec = Arc::new(IntervalRecord {
            id: IntervalId { owner: 1, seq: 1 },
            vt: VTime::zero(2),
            lamport: 5,
            pages: vec![0],
        });
        a.merge_logged(std::slice::from_ref(&rec));
        assert_eq!(a.logged_vt.get(1), 1);
        a.merge_logged(&[rec]);
        assert_eq!(a.logged_vt.get(1), 1);
    }

    #[test]
    fn homes_assignment() {
        let mut l = Layout::new();
        let _ = l.add_view(8); // view 0: round-robin home
        let _ = l.add_view_homed(8, Some(3)); // view 1: explicit home
        let _ = l.add_view(8); // view 2
        let a = NodeState::new(0, 4, Protocol::VcSd, CostModel::default(), l.freeze(), 128);
        assert_eq!(a.view_home(0), 0);
        assert_eq!(a.view_home(1), 3);
        assert_eq!(a.view_home(2), 2);
        assert_eq!(a.lock_home(7), 3);
    }
}
