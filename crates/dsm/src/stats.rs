//! The statistics reported in the paper's tables.
//!
//! Every table row of the evaluation (Tables 1, 2, 4, 6, 8) is a field here:
//! `Time`, `Barriers`, `Acquires`, `Data`, `Num. Msg`, `Diff Requests`,
//! `Barrier Time`, `Acquire Time`, `Rexmit`.

use std::collections::BTreeMap;

use vopp_sim::SimTime;
use vopp_simnet::NetStats;

/// Per-view counters, the data behind the paper's §3.6 rule of thumb
/// ("the more views are acquired, the more messages there are in the
/// system; and the larger a view is, the more data traffic is caused").
#[derive(Debug, Clone, Copy, Default)]
pub struct ViewStats {
    /// Acquire operations (read + write) on this view.
    pub acquires: u64,
    /// Write releases that produced a new version.
    pub versions: u64,
    /// Total time spent blocked acquiring this view, in nanoseconds.
    pub wait_ns: u64,
    /// Consistency payload bytes received in this view's grants.
    pub grant_bytes: u64,
}

/// Map of view id to its counters.
pub type ViewStatsMap = BTreeMap<u32, ViewStats>;

/// Counters collected on one node during a run.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Barrier operations performed by this node.
    pub barriers: u64,
    /// Lock/view acquire request messages issued (read and write views).
    pub acquires: u64,
    /// Diff request messages issued on page faults.
    pub diff_requests: u64,
    /// Page faults taken (invalid page accessed).
    pub page_faults: u64,
    /// Retransmitted datagrams (from the reliable transport).
    pub rexmits: u64,
    /// Total virtual time spent blocked in barriers.
    pub barrier_wait_ns: u64,
    /// Total virtual time spent blocked acquiring locks/views.
    pub acquire_wait_ns: u64,
    /// Twin snapshots taken.
    pub twins: u64,
    /// Diffs created at interval ends.
    pub diffs_created: u64,
    /// Diffs applied to local pages.
    pub diffs_applied: u64,
    /// Per-view breakdown of acquire traffic.
    pub views: ViewStatsMap,
}

impl NodeStats {
    /// Mutable access to one view's counters (creating them if absent).
    pub fn stats_view(&mut self, v: u32) -> &mut ViewStats {
        self.views.entry(v).or_default()
    }

    /// Merge another node's counters into an aggregate.
    pub fn absorb(&mut self, o: &NodeStats) {
        self.barriers += o.barriers;
        self.acquires += o.acquires;
        self.diff_requests += o.diff_requests;
        self.page_faults += o.page_faults;
        self.rexmits += o.rexmits;
        self.barrier_wait_ns += o.barrier_wait_ns;
        self.acquire_wait_ns += o.acquire_wait_ns;
        self.twins += o.twins;
        self.diffs_created += o.diffs_created;
        self.diffs_applied += o.diffs_applied;
        for (v, vs) in &o.views {
            let e = self.views.entry(*v).or_default();
            e.acquires += vs.acquires;
            e.versions += vs.versions;
            e.wait_ns += vs.wait_ns;
            e.grant_bytes += vs.grant_bytes;
        }
    }
}

/// Whole-run statistics: the paper's table rows.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock (virtual) execution time.
    pub time: SimTime,
    /// Number of processors.
    pub nprocs: usize,
    /// Summed node counters.
    pub nodes: NodeStats,
    /// Network totals (messages, bytes, drops).
    pub net: NetStats,
}

impl RunStats {
    /// `Time (Sec.)` row.
    pub fn time_secs(&self) -> f64 {
        self.time.as_secs_f64()
    }

    /// `Barriers` row: barriers per node (every node executes each barrier).
    pub fn barriers(&self) -> u64 {
        if self.nprocs == 0 {
            0
        } else {
            self.nodes.barriers / self.nprocs as u64
        }
    }

    /// `Acquires` row: total acquire messages across the cluster.
    pub fn acquires(&self) -> u64 {
        self.nodes.acquires
    }

    /// `Data` row, in megabytes put on the wire.
    pub fn data_mbytes(&self) -> f64 {
        self.net.bytes as f64 / 1e6
    }

    /// `Num. Msg` row: datagrams on the wire (including retransmissions).
    pub fn num_msgs(&self) -> u64 {
        self.net.msgs
    }

    /// `Diff Requests` row.
    pub fn diff_requests(&self) -> u64 {
        self.nodes.diff_requests
    }

    /// `Barrier Time (usec.)` row: mean blocked time per barrier crossing.
    pub fn barrier_time_usec(&self) -> f64 {
        if self.nodes.barriers == 0 {
            0.0
        } else {
            self.nodes.barrier_wait_ns as f64 / 1000.0 / self.nodes.barriers as f64
        }
    }

    /// `Acquire Time (usec.)` row: mean blocked time per acquire.
    pub fn acquire_time_usec(&self) -> f64 {
        if self.nodes.acquires == 0 {
            0.0
        } else {
            self.nodes.acquire_wait_ns as f64 / 1000.0 / self.nodes.acquires as f64
        }
    }

    /// `Rexmit` row.
    pub fn rexmits(&self) -> u64 {
        self.nodes.rexmits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_everything() {
        let mut a = NodeStats {
            barriers: 1,
            acquires: 2,
            diff_requests: 3,
            page_faults: 4,
            rexmits: 5,
            barrier_wait_ns: 6,
            acquire_wait_ns: 7,
            twins: 8,
            diffs_created: 9,
            diffs_applied: 10,
            ..Default::default()
        };
        a.stats_view(3).acquires = 2;
        a.absorb(&a.clone());
        assert_eq!(a.barriers, 2);
        assert_eq!(a.diffs_applied, 20);
        assert_eq!(a.views[&3].acquires, 4);
    }

    #[test]
    fn derived_rows() {
        let s = RunStats {
            time: SimTime(2_000_000_000),
            nprocs: 4,
            nodes: NodeStats {
                barriers: 40, // 10 per node
                acquires: 8,
                barrier_wait_ns: 40_000_000, // 1ms per crossing
                acquire_wait_ns: 16_000,     // 2us per acquire
                rexmits: 3,
                ..Default::default()
            },
            net: NetStats {
                msgs: 100,
                bytes: 3_000_000,
                ..Default::default()
            },
        };
        assert_eq!(s.time_secs(), 2.0);
        assert_eq!(s.barriers(), 10);
        assert_eq!(s.acquires(), 8);
        assert_eq!(s.data_mbytes(), 3.0);
        assert_eq!(s.num_msgs(), 100);
        assert_eq!(s.barrier_time_usec(), 1000.0);
        assert_eq!(s.acquire_time_usec(), 2.0);
        assert_eq!(s.rexmits(), 3);
    }

    #[test]
    fn zero_division_guards() {
        let s = RunStats {
            time: SimTime::ZERO,
            nprocs: 1,
            nodes: NodeStats::default(),
            net: NetStats::default(),
        };
        assert_eq!(s.barrier_time_usec(), 0.0);
        assert_eq!(s.acquire_time_usec(), 0.0);
    }
}
