//! The statistics reported in the paper's tables.
//!
//! Every table row of the evaluation (Tables 1, 2, 4, 6, 8) is a field here:
//! `Time`, `Barriers`, `Acquires`, `Data`, `Num. Msg`, `Diff Requests`,
//! `Barrier Time`, `Acquire Time`, `Rexmit`.

use std::collections::BTreeMap;

use vopp_metrics::{Breakdown, Histogram, Phase, Registry, Summary};
use vopp_sim::SimTime;
use vopp_simnet::NetStats;

/// Per-view counters, the data behind the paper's §3.6 rule of thumb
/// ("the more views are acquired, the more messages there are in the
/// system; and the larger a view is, the more data traffic is caused").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Acquire operations (read + write) on this view.
    pub acquires: u64,
    /// Write releases that produced a new version.
    pub versions: u64,
    /// Total time spent blocked acquiring this view, in nanoseconds.
    pub wait_ns: u64,
    /// Consistency payload bytes received in this view's grants.
    pub grant_bytes: u64,
}

/// Map of view id to its counters.
pub type ViewStatsMap = BTreeMap<u32, ViewStats>;

/// Phase-accounting breakdown and latency histograms collected on one node
/// (or aggregated across nodes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Where every nanosecond of this node's virtual time went.
    pub breakdown: Breakdown,
    /// Round-trip latency of view/lock acquire requests.
    pub acquire_rtt: Histogram,
    /// Round-trip latency of barrier crossings (rpc only, excluding the
    /// local interval-close work before entering).
    pub barrier_rtt: Histogram,
    /// Round-trip latency of fault-time page/diff fetches.
    pub diff_rtt: Histogram,
    /// Round-trip latency of every reliable-transport call (superset of the
    /// above plus release/flush traffic), from `RpcClient::rtt`.
    pub rpc_rtt: Histogram,
}

impl NodeMetrics {
    /// Merge another node's metrics into an aggregate.
    pub fn absorb(&mut self, o: &NodeMetrics) {
        self.breakdown.absorb(&o.breakdown);
        self.acquire_rtt.absorb(&o.acquire_rtt);
        self.barrier_rtt.absorb(&o.barrier_rtt);
        self.diff_rtt.absorb(&o.diff_rtt);
        self.rpc_rtt.absorb(&o.rpc_rtt);
    }
}

/// Counters collected on one node during a run.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Barrier operations performed by this node.
    pub barriers: u64,
    /// Lock/view acquire request messages issued (read and write views).
    pub acquires: u64,
    /// Diff request messages issued on page faults.
    pub diff_requests: u64,
    /// Page faults taken (invalid page accessed).
    pub page_faults: u64,
    /// Retransmitted datagrams (from the reliable transport).
    pub rexmits: u64,
    /// Total virtual time spent blocked in barriers.
    pub barrier_wait_ns: u64,
    /// Total virtual time spent blocked acquiring locks/views.
    pub acquire_wait_ns: u64,
    /// Twin snapshots taken.
    pub twins: u64,
    /// Diffs created at interval ends.
    pub diffs_created: u64,
    /// Diffs applied to local pages.
    pub diffs_applied: u64,
    /// Per-view breakdown of acquire traffic.
    pub views: ViewStatsMap,
    /// Phase breakdown and latency histograms.
    pub metrics: NodeMetrics,
}

impl NodeStats {
    /// Mutable access to one view's counters (creating them if absent).
    pub fn stats_view(&mut self, v: u32) -> &mut ViewStats {
        self.views.entry(v).or_default()
    }

    /// Merge another node's counters into an aggregate.
    pub fn absorb(&mut self, o: &NodeStats) {
        self.barriers += o.barriers;
        self.acquires += o.acquires;
        self.diff_requests += o.diff_requests;
        self.page_faults += o.page_faults;
        self.rexmits += o.rexmits;
        self.barrier_wait_ns += o.barrier_wait_ns;
        self.acquire_wait_ns += o.acquire_wait_ns;
        self.twins += o.twins;
        self.diffs_created += o.diffs_created;
        self.diffs_applied += o.diffs_applied;
        for (v, vs) in &o.views {
            let e = self.views.entry(*v).or_default();
            e.acquires += vs.acquires;
            e.versions += vs.versions;
            e.wait_ns += vs.wait_ns;
            e.grant_bytes += vs.grant_bytes;
        }
        self.metrics.absorb(&o.metrics);
    }
}

/// Whole-run statistics: the paper's table rows.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Wall-clock (virtual) execution time.
    pub time: SimTime,
    /// Number of processors.
    pub nprocs: usize,
    /// Summed node counters.
    pub nodes: NodeStats,
    /// Network totals (messages, bytes, drops).
    pub net: NetStats,
    /// Per-node phase breakdowns, indexed by node id. Each sums exactly to
    /// the matching entry of [`RunStats::node_end`].
    pub node_breakdowns: Vec<Breakdown>,
    /// Per-node virtual finish times, indexed by node id.
    pub node_end: Vec<SimTime>,
    /// The run's virtual-time critical path, present when the causal
    /// profiler was attached ([`crate::ClusterConfig::profiler`]). Pure
    /// observation: everything else in this struct is byte-identical with
    /// or without it.
    pub crit: Option<std::sync::Arc<vopp_metrics::CritPath>>,
}

impl RunStats {
    /// `Time (Sec.)` row.
    pub fn time_secs(&self) -> f64 {
        self.time.as_secs_f64()
    }

    /// `Barriers` row: barriers per node (every node executes each barrier).
    pub fn barriers(&self) -> u64 {
        if self.nprocs == 0 {
            0
        } else {
            self.nodes.barriers / self.nprocs as u64
        }
    }

    /// `Acquires` row: total acquire messages across the cluster.
    pub fn acquires(&self) -> u64 {
        self.nodes.acquires
    }

    /// `Data` row, in megabytes put on the wire.
    pub fn data_mbytes(&self) -> f64 {
        self.net.bytes as f64 / 1e6
    }

    /// `Num. Msg` row: datagrams on the wire (including retransmissions).
    pub fn num_msgs(&self) -> u64 {
        self.net.msgs
    }

    /// `Diff Requests` row.
    pub fn diff_requests(&self) -> u64 {
        self.nodes.diff_requests
    }

    /// `Barrier Time (usec.)` row: mean blocked time per barrier crossing.
    pub fn barrier_time_usec(&self) -> f64 {
        if self.nodes.barriers == 0 {
            0.0
        } else {
            self.nodes.barrier_wait_ns as f64 / 1000.0 / self.nodes.barriers as f64
        }
    }

    /// `Acquire Time (usec.)` row: mean blocked time per acquire.
    pub fn acquire_time_usec(&self) -> f64 {
        if self.nodes.acquires == 0 {
            0.0
        } else {
            self.nodes.acquire_wait_ns as f64 / 1000.0 / self.nodes.acquires as f64
        }
    }

    /// `Rexmit` row.
    pub fn rexmits(&self) -> u64 {
        self.nodes.rexmits
    }

    /// Aggregate phase breakdown across all nodes.
    pub fn breakdown(&self) -> &Breakdown {
        &self.nodes.metrics.breakdown
    }

    /// Percentage of aggregate node time spent in `phase` (0.0 when empty).
    pub fn phase_pct(&self, phase: Phase) -> f64 {
        self.breakdown().pct(phase)
    }

    /// The paper-style "send overhead" percentage: protocol CPU plus
    /// release/flush waits, as a share of aggregate node time.
    pub fn send_overhead_pct(&self) -> f64 {
        let b = self.breakdown();
        let total = b.total_ns();
        if total == 0 {
            0.0
        } else {
            b.send_overhead_ns() as f64 * 100.0 / total as f64
        }
    }

    /// Acquire round-trip latency summary (p50/p95/max) across all nodes.
    pub fn acquire_latency(&self) -> Summary {
        self.nodes.metrics.acquire_rtt.summary()
    }

    /// Barrier round-trip latency summary across all nodes.
    pub fn barrier_latency(&self) -> Summary {
        self.nodes.metrics.barrier_rtt.summary()
    }

    /// Fault-time page/diff fetch latency summary across all nodes.
    pub fn diff_latency(&self) -> Summary {
        self.nodes.metrics.diff_rtt.summary()
    }

    /// The §3.6 hot-view ranking: views ordered by total blocked acquire
    /// time (descending, view id as tiebreak), truncated to `top_n`.
    pub fn hot_views(&self, top_n: usize) -> Vec<(u32, ViewStats)> {
        let mut views: Vec<(u32, ViewStats)> =
            self.nodes.views.iter().map(|(v, s)| (*v, *s)).collect();
        views.sort_by(|a, b| b.1.wait_ns.cmp(&a.1.wait_ns).then(a.0.cmp(&b.0)));
        views.truncate(top_n);
        views
    }

    /// Flatten everything into a name-keyed [`Registry`]: exact counters
    /// (counts, message/byte totals, `time_ns`), derived gauges, and the
    /// latency histograms. This is the stable export surface consumed by the
    /// `BENCH_<app>.json` artifacts and the regression gate.
    pub fn registry(&self) -> Registry {
        let mut r = Registry::default();
        r.inc_counter("time_ns", self.time.nanos());
        r.inc_counter("barriers", self.nodes.barriers);
        r.inc_counter("acquires", self.nodes.acquires);
        r.inc_counter("diff_requests", self.nodes.diff_requests);
        r.inc_counter("page_faults", self.nodes.page_faults);
        r.inc_counter("rexmits", self.nodes.rexmits);
        r.inc_counter("twins", self.nodes.twins);
        r.inc_counter("diffs_created", self.nodes.diffs_created);
        r.inc_counter("diffs_applied", self.nodes.diffs_applied);
        r.inc_counter("net_msgs", self.net.msgs);
        r.inc_counter("net_bytes", self.net.bytes);
        r.inc_counter("net_drops", self.net.drops);
        r.set_gauge("time_secs", self.time_secs());
        r.set_gauge("data_mbytes", self.data_mbytes());
        r.set_gauge("nprocs", self.nprocs as f64);
        r.absorb_hist("acquire_rtt", &self.nodes.metrics.acquire_rtt);
        r.absorb_hist("barrier_rtt", &self.nodes.metrics.barrier_rtt);
        r.absorb_hist("diff_rtt", &self.nodes.metrics.diff_rtt);
        r.absorb_hist("rpc_rtt", &self.nodes.metrics.rpc_rtt);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_everything() {
        let mut a = NodeStats {
            barriers: 1,
            acquires: 2,
            diff_requests: 3,
            page_faults: 4,
            rexmits: 5,
            barrier_wait_ns: 6,
            acquire_wait_ns: 7,
            twins: 8,
            diffs_created: 9,
            diffs_applied: 10,
            ..Default::default()
        };
        a.stats_view(3).acquires = 2;
        a.absorb(&a.clone());
        assert_eq!(a.barriers, 2);
        assert_eq!(a.diffs_applied, 20);
        assert_eq!(a.views[&3].acquires, 4);
    }

    #[test]
    fn absorb_merges_disjoint_and_overlapping_views_fieldwise() {
        let mut a = NodeStats::default();
        *a.stats_view(1) = ViewStats {
            acquires: 2,
            versions: 1,
            wait_ns: 100,
            grant_bytes: 4096,
        };
        let mut b = NodeStats::default();
        *b.stats_view(1) = ViewStats {
            acquires: 3,
            versions: 2,
            wait_ns: 50,
            grant_bytes: 1024,
        };
        *b.stats_view(7) = ViewStats {
            acquires: 1,
            versions: 0,
            wait_ns: 9,
            grant_bytes: 8,
        };
        a.absorb(&b);
        // Overlapping view: every field sums.
        let v1 = &a.views[&1];
        assert_eq!(
            (v1.acquires, v1.versions, v1.wait_ns, v1.grant_bytes),
            (5, 3, 150, 5120)
        );
        // Disjoint view: copied whole.
        let v7 = &a.views[&7];
        assert_eq!(
            (v7.acquires, v7.versions, v7.wait_ns, v7.grant_bytes),
            (1, 0, 9, 8)
        );
        assert_eq!(a.views.len(), 2);
    }

    #[test]
    fn absorb_merges_metrics() {
        let mut a = NodeStats::default();
        a.metrics.breakdown.charge(Phase::Compute, 10);
        a.metrics.acquire_rtt.record(1_000);
        let mut b = NodeStats::default();
        b.metrics.breakdown.charge(Phase::BarrierWait, 5);
        b.metrics.acquire_rtt.record(3_000);
        b.metrics.diff_rtt.record(7_000);
        a.absorb(&b);
        assert_eq!(a.metrics.breakdown.total_ns(), 15);
        assert_eq!(a.metrics.breakdown.get(Phase::BarrierWait), 5);
        assert_eq!(a.metrics.acquire_rtt.count(), 2);
        assert_eq!(a.metrics.diff_rtt.max_ns(), 7_000);
    }

    #[test]
    fn derived_rows() {
        let s = RunStats {
            time: SimTime(2_000_000_000),
            nprocs: 4,
            nodes: NodeStats {
                barriers: 40, // 10 per node
                acquires: 8,
                barrier_wait_ns: 40_000_000, // 1ms per crossing
                acquire_wait_ns: 16_000,     // 2us per acquire
                rexmits: 3,
                ..Default::default()
            },
            net: NetStats {
                msgs: 100,
                bytes: 3_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(s.time_secs(), 2.0);
        assert_eq!(s.barriers(), 10);
        assert_eq!(s.acquires(), 8);
        assert_eq!(s.data_mbytes(), 3.0);
        assert_eq!(s.num_msgs(), 100);
        assert_eq!(s.barrier_time_usec(), 1000.0);
        assert_eq!(s.acquire_time_usec(), 2.0);
        assert_eq!(s.rexmits(), 3);
    }

    #[test]
    fn zero_division_guards() {
        let s = RunStats {
            time: SimTime::ZERO,
            nprocs: 1,
            ..Default::default()
        };
        assert_eq!(s.barrier_time_usec(), 0.0);
        assert_eq!(s.acquire_time_usec(), 0.0);
        assert_eq!(s.phase_pct(Phase::Compute), 0.0);
        assert_eq!(s.send_overhead_pct(), 0.0);
        assert_eq!(s.acquire_latency().p95_ns, 0);
    }

    #[test]
    fn nprocs_zero_yields_zero_not_panic() {
        let s = RunStats {
            nodes: NodeStats {
                barriers: 12,
                barrier_wait_ns: 1_000,
                ..Default::default()
            },
            // nprocs defaults to 0: an empty/aggregated-away run.
            ..Default::default()
        };
        assert_eq!(s.nprocs, 0);
        assert_eq!(s.barriers(), 0);
        // Per-barrier means still well-defined (barriers counter nonzero).
        assert!(s.barrier_time_usec() > 0.0);
    }

    #[test]
    fn hot_views_ranked_by_wait_time() {
        let mut s = RunStats::default();
        *s.nodes.stats_view(2) = ViewStats {
            acquires: 4,
            versions: 1,
            wait_ns: 500,
            grant_bytes: 10,
        };
        *s.nodes.stats_view(5) = ViewStats {
            acquires: 1,
            versions: 1,
            wait_ns: 9_000,
            grant_bytes: 99,
        };
        *s.nodes.stats_view(9) = ViewStats {
            acquires: 7,
            versions: 2,
            wait_ns: 500,
            grant_bytes: 1,
        };
        let hot = s.hot_views(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, 5);
        // Equal waits tie-break on view id.
        assert_eq!(hot[1].0, 2);
        assert_eq!(s.hot_views(10).len(), 3);
    }

    #[test]
    fn registry_exports_counters_gauges_hists() {
        let mut s = RunStats {
            time: SimTime(1_000_000_000),
            nprocs: 2,
            nodes: NodeStats {
                barriers: 4,
                diff_requests: 7,
                ..Default::default()
            },
            net: NetStats {
                msgs: 55,
                bytes: 2_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        s.nodes.metrics.barrier_rtt.record(80_000);
        let r = s.registry();
        assert_eq!(r.counter("time_ns"), Some(1_000_000_000));
        assert_eq!(r.counter("diff_requests"), Some(7));
        assert_eq!(r.counter("net_msgs"), Some(55));
        assert_eq!(r.gauge("nprocs"), Some(2.0));
        assert_eq!(r.hist("barrier_rtt").unwrap().count(), 1);
        // JSON export is well-formed and re-parsable.
        let text = r.to_value().to_json();
        assert!(vopp_trace::json::Value::parse(&text).is_ok());
    }
}
