//! CPU cost model, calibrated to the paper's 350 MHz Pentium-class nodes.
//!
//! Application code charges its algorithmic work through [`CpuDebt`] (flops,
//! integer ops, byte copies); the DSM runtime charges protocol overheads
//! (page-fault traps, twin snapshots, diff creation/application). Debt is
//! accumulated locally and flushed into the simulation clock at interaction
//! points (sync operations, faults), so element-wise shared-memory access
//! does not flood the event queue.

use std::cell::Cell;

use vopp_sim::{AppCtx, SimDuration};

/// Nanosecond costs of primitive operations on the simulated CPU.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// One floating-point operation (350 MHz, no SIMD, cache-imperfect).
    pub ns_per_flop: f64,
    /// One integer/index operation.
    pub ns_per_int: f64,
    /// Copying one byte between buffers (memcpy-style bulk rate).
    pub ns_per_byte_copy: f64,
    /// Entering the page-fault trap and protocol handler (SIGSEGV path).
    pub page_fault: SimDuration,
    /// Snapshotting a 4 KB twin on first write to a page.
    pub twin: SimDuration,
    /// Creating the diff of one dirty page at interval end.
    pub diff_create: SimDuration,
    /// Applying one incoming diff to a page.
    pub diff_apply: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ns_per_flop: 12.0,
            ns_per_int: 6.0,
            ns_per_byte_copy: 3.0,
            page_fault: SimDuration::from_micros(40),
            twin: SimDuration::from_micros(25),
            diff_create: SimDuration::from_micros(30),
            diff_apply: SimDuration::from_micros(15),
        }
    }
}

/// Locally accumulated CPU time, flushed into the simulator lazily.
///
/// Two accounts share one clock: `ns` is the total owed (application work
/// plus protocol overhead) and drives the simulated clock exactly as a single
/// accumulator would — the phase split must never perturb virtual time.
/// `overhead_ns` tracks the protocol-charged portion so a flush can report
/// how much of the advance was overhead.
#[derive(Debug, Default)]
pub struct CpuDebt {
    ns: Cell<f64>,
    overhead_ns: Cell<f64>,
    diff_ns: Cell<f64>,
}

/// Whole nanoseconds pushed into the clock by one [`CpuDebt::flush`], split
/// into application compute and protocol overhead. `app_ns + overhead_ns`
/// is exactly the clock advance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushedNs {
    /// Application work (flops, int ops, copies).
    pub app_ns: u64,
    /// Protocol CPU (page-fault traps, twins, diff create/apply).
    pub overhead_ns: u64,
    /// Diff create/apply share of `overhead_ns`. Purely informational —
    /// feeds the critical-path profiler's "free diffs" what-if estimator.
    pub diff_ns: u64,
}

impl FlushedNs {
    /// Total clock advance of the flush.
    pub fn total_ns(self) -> u64 {
        self.app_ns + self.overhead_ns
    }
}

impl CpuDebt {
    /// An empty account.
    pub fn new() -> CpuDebt {
        CpuDebt::default()
    }

    /// Add raw nanoseconds of application work.
    #[inline]
    pub fn add_ns(&self, ns: f64) {
        self.ns.set(self.ns.get() + ns);
    }

    /// Add a structured duration of application work.
    #[inline]
    pub fn add(&self, d: SimDuration) {
        self.add_ns(d.nanos() as f64);
    }

    /// Add a structured duration of protocol overhead: advances the clock
    /// like [`CpuDebt::add`], but the time is reported as overhead by the
    /// next flush.
    #[inline]
    pub fn add_overhead(&self, d: SimDuration) {
        let ns = d.nanos() as f64;
        self.ns.set(self.ns.get() + ns);
        self.overhead_ns.set(self.overhead_ns.get() + ns);
    }

    /// Add protocol overhead that is diff creation/application. Identical
    /// clock effect to [`CpuDebt::add_overhead`]; the diff share is also
    /// reported separately by the next flush.
    #[inline]
    pub fn add_overhead_diff(&self, d: SimDuration) {
        self.add_overhead(d);
        self.diff_ns.set(self.diff_ns.get() + d.nanos() as f64);
    }

    /// Nanoseconds currently owed (both accounts).
    pub fn owed_ns(&self) -> f64 {
        self.ns.get()
    }

    /// Push all owed time into the simulation clock, reporting the split.
    /// Sub-nanosecond residue is dropped, exactly as before the split: the
    /// total advance is `ns as u64` of the single legacy accumulator.
    pub fn flush(&self, ctx: &AppCtx<'_>) -> FlushedNs {
        let ns = self.ns.replace(0.0);
        let overhead = self.overhead_ns.replace(0.0);
        let diff = self.diff_ns.replace(0.0);
        if ns >= 1.0 {
            let total = ns as u64;
            ctx.compute(SimDuration::from_nanos(total));
            let overhead_ns = (overhead as u64).min(total);
            FlushedNs {
                app_ns: total - overhead_ns,
                overhead_ns,
                diff_ns: (diff as u64).min(overhead_ns),
            }
        } else {
            FlushedNs::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debt_accumulates() {
        let d = CpuDebt::new();
        d.add_ns(10.5);
        d.add(SimDuration::from_nanos(4));
        assert!((d.owed_ns() - 14.5).abs() < 1e-9);
    }

    #[test]
    fn flush_drains_into_clock() {
        let out = vopp_sim::run_simple(1, SimDuration::from_micros(1), |ctx| {
            let d = CpuDebt::new();
            d.add_ns(2_500.0);
            let f = d.flush(&ctx);
            assert_eq!(
                f,
                FlushedNs {
                    app_ns: 2_500,
                    overhead_ns: 0,
                    diff_ns: 0
                }
            );
            assert_eq!(d.owed_ns(), 0.0);
            // Sub-nanosecond residue is dropped, not re-queued.
            d.add_ns(0.4);
            assert_eq!(d.flush(&ctx), FlushedNs::default());
            ctx.now()
        });
        assert_eq!(out.results[0].nanos(), 2_500);
    }

    #[test]
    fn flush_splits_app_and_overhead() {
        let out = vopp_sim::run_simple(1, SimDuration::from_micros(1), |ctx| {
            let d = CpuDebt::new();
            d.add_ns(1_000.25);
            d.add_overhead(SimDuration::from_nanos(500));
            let f = d.flush(&ctx);
            // Total is the truncated single accumulator (1500.25 -> 1500ns),
            // overhead is reported out of that total.
            assert_eq!(f.total_ns(), 1_500);
            assert_eq!(f.overhead_ns, 500);
            assert_eq!(f.app_ns, 1_000);
            ctx.now()
        });
        assert_eq!(out.results[0].nanos(), 1_500);
    }

    #[test]
    fn overhead_alone_advances_clock() {
        let out = vopp_sim::run_simple(1, SimDuration::from_micros(1), |ctx| {
            let d = CpuDebt::new();
            d.add_overhead(SimDuration::from_micros(40));
            let f = d.flush(&ctx);
            assert_eq!(f.app_ns, 0);
            assert_eq!(f.overhead_ns, 40_000);
            ctx.now()
        });
        assert_eq!(out.results[0].nanos(), 40_000);
    }

    #[test]
    fn diff_overhead_is_reported_within_the_overhead_share() {
        let out = vopp_sim::run_simple(1, SimDuration::from_micros(1), |ctx| {
            let d = CpuDebt::new();
            d.add_ns(1_000.0);
            d.add_overhead(SimDuration::from_nanos(200));
            d.add_overhead_diff(SimDuration::from_nanos(300));
            let f = d.flush(&ctx);
            assert_eq!(f.total_ns(), 1_500);
            assert_eq!(f.overhead_ns, 500);
            assert_eq!(f.diff_ns, 300);
            // A fresh flush reports nothing.
            assert_eq!(d.flush(&ctx), FlushedNs::default());
            ctx.now()
        });
        assert_eq!(out.results[0].nanos(), 1_500);
    }

    #[test]
    fn default_model_is_era_plausible() {
        let c = CostModel::default();
        // A 4 KB memcpy should be on the order of 10us on a 350 MHz box.
        let memcpy_us = 4096.0 * c.ns_per_byte_copy / 1000.0;
        assert!(memcpy_us > 5.0 && memcpy_us < 50.0);
    }
}
