//! CPU cost model, calibrated to the paper's 350 MHz Pentium-class nodes.
//!
//! Application code charges its algorithmic work through [`CpuDebt`] (flops,
//! integer ops, byte copies); the DSM runtime charges protocol overheads
//! (page-fault traps, twin snapshots, diff creation/application). Debt is
//! accumulated locally and flushed into the simulation clock at interaction
//! points (sync operations, faults), so element-wise shared-memory access
//! does not flood the event queue.

use std::cell::Cell;

use vopp_sim::{AppCtx, SimDuration};

/// Nanosecond costs of primitive operations on the simulated CPU.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// One floating-point operation (350 MHz, no SIMD, cache-imperfect).
    pub ns_per_flop: f64,
    /// One integer/index operation.
    pub ns_per_int: f64,
    /// Copying one byte between buffers (memcpy-style bulk rate).
    pub ns_per_byte_copy: f64,
    /// Entering the page-fault trap and protocol handler (SIGSEGV path).
    pub page_fault: SimDuration,
    /// Snapshotting a 4 KB twin on first write to a page.
    pub twin: SimDuration,
    /// Creating the diff of one dirty page at interval end.
    pub diff_create: SimDuration,
    /// Applying one incoming diff to a page.
    pub diff_apply: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ns_per_flop: 12.0,
            ns_per_int: 6.0,
            ns_per_byte_copy: 3.0,
            page_fault: SimDuration::from_micros(40),
            twin: SimDuration::from_micros(25),
            diff_create: SimDuration::from_micros(30),
            diff_apply: SimDuration::from_micros(15),
        }
    }
}

/// Locally accumulated CPU time, flushed into the simulator lazily.
#[derive(Debug, Default)]
pub struct CpuDebt {
    ns: Cell<f64>,
}

impl CpuDebt {
    /// An empty account.
    pub fn new() -> CpuDebt {
        CpuDebt::default()
    }

    /// Add raw nanoseconds.
    #[inline]
    pub fn add_ns(&self, ns: f64) {
        self.ns.set(self.ns.get() + ns);
    }

    /// Add a structured duration.
    #[inline]
    pub fn add(&self, d: SimDuration) {
        self.add_ns(d.nanos() as f64);
    }

    /// Nanoseconds currently owed.
    pub fn owed_ns(&self) -> f64 {
        self.ns.get()
    }

    /// Push all owed time into the simulation clock.
    pub fn flush(&self, ctx: &AppCtx<'_>) {
        let ns = self.ns.replace(0.0);
        if ns >= 1.0 {
            ctx.compute(SimDuration::from_nanos(ns as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debt_accumulates() {
        let d = CpuDebt::new();
        d.add_ns(10.5);
        d.add(SimDuration::from_nanos(4));
        assert!((d.owed_ns() - 14.5).abs() < 1e-9);
    }

    #[test]
    fn flush_drains_into_clock() {
        let out = vopp_sim::run_simple(1, SimDuration::from_micros(1), |ctx| {
            let d = CpuDebt::new();
            d.add_ns(2_500.0);
            d.flush(&ctx);
            assert_eq!(d.owed_ns(), 0.0);
            // Sub-nanosecond residue is dropped, not re-queued.
            d.add_ns(0.4);
            d.flush(&ctx);
            ctx.now()
        });
        assert_eq!(out.results[0].nanos(), 2_500);
    }

    #[test]
    fn default_model_is_era_plausible() {
        let c = CostModel::default();
        // A 4 KB memcpy should be on the order of 10us on a 350 MHz box.
        let memcpy_us = 4096.0 * c.ns_per_byte_copy / 1000.0;
        assert!(memcpy_us > 5.0 && memcpy_us < 50.0);
    }
}
