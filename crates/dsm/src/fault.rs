//! First-class fault plans for dynamic-cluster experiments.
//!
//! A [`FaultPlan`] describes, up front and deterministically, everything
//! that goes wrong during a run: elevated background message loss, nodes
//! with degraded CPUs, and crash windows after which a node restarts with
//! cold volatile state. The plan lives in
//! [`ClusterConfig`](crate::ClusterConfig), so every harness — unit tests,
//! the `tables` sweep, the serving workload — expresses faults the same way,
//! and the plan's [`label`](FaultPlan::label) feeds both table rows and the
//! sweep cache's context hash.
//!
//! Faults never introduce nondeterminism: loss is driven by the seeded
//! network RNG, slowdowns are fixed cost-model scalings, and crash schedules
//! are fixed points in virtual time. Two runs with the same plan are
//! byte-identical.

use vopp_sim::{SimDuration, SimTime};
use vopp_simnet::NetConfig;

use crate::cost::CostModel;

/// Elevated background datagram loss for the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct Loss {
    /// Per-datagram drop probability (replaces the config's base rate).
    pub drop_prob: f64,
    /// Seed for the loss RNG (replaces the config's seed).
    pub seed: u64,
}

/// One node whose CPU runs slower than the rest of the cluster — a failing
/// fan, a background daemon, a half-speed replacement box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    /// The degraded node.
    pub node: usize,
    /// Cost multiplier (`1.5` = every CPU operation takes 1.5x as long).
    pub factor: f64,
}

/// One crash window: the node loses its volatile protocol state at `at`,
/// stays down for `down_for`, then rejoins and reconstructs lazily from the
/// home nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The crashing node.
    pub node: usize,
    /// Virtual time of the crash.
    pub at: SimTime,
    /// How long the node is down before it rejoins.
    pub down_for: SimDuration,
}

impl Crash {
    /// Virtual time at which the node is back up.
    pub fn up_at(&self) -> SimTime {
        self.at + self.down_for
    }
}

/// A complete, deterministic fault schedule for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Elevated background loss, if any.
    pub loss: Option<Loss>,
    /// Per-node CPU slowdowns.
    pub slowdowns: Vec<Slowdown>,
    /// Crash windows, any order; [`FaultPlan::crashes_for`] sorts per node.
    pub crashes: Vec<Crash>,
}

impl FaultPlan {
    /// The empty plan: nothing goes wrong.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan changes nothing about a run.
    pub fn is_empty(&self) -> bool {
        self.loss.is_none() && self.slowdowns.is_empty() && self.crashes.is_empty()
    }

    /// Builder: set elevated background loss.
    pub fn with_loss(mut self, drop_prob: f64, seed: u64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&drop_prob));
        self.loss = Some(Loss { drop_prob, seed });
        self
    }

    /// Builder: slow `node` down by `factor`.
    pub fn with_slowdown(mut self, node: usize, factor: f64) -> FaultPlan {
        assert!(factor >= 1.0, "a slowdown factor below 1.0 is a speedup");
        self.slowdowns.push(Slowdown { node, factor });
        self
    }

    /// Builder: crash `node` at `at` for `down_for`.
    pub fn with_crash(mut self, node: usize, at: SimTime, down_for: SimDuration) -> FaultPlan {
        self.crashes.push(Crash { node, at, down_for });
        self
    }

    /// The network configuration this plan turns `base` into.
    pub fn apply_net(&self, base: &NetConfig) -> NetConfig {
        match &self.loss {
            None => base.clone(),
            Some(l) => NetConfig {
                base_drop_prob: l.drop_prob,
                seed: l.seed,
                ..base.clone()
            },
        }
    }

    /// The cost model `node` runs under: `base` scaled by the product of the
    /// node's slowdown factors (normally zero or one of them).
    pub fn cost_for(&self, node: usize, base: &CostModel) -> CostModel {
        let factor: f64 = self
            .slowdowns
            .iter()
            .filter(|s| s.node == node)
            .map(|s| s.factor)
            .product();
        if factor == 1.0 {
            return base.clone();
        }
        let scale = |d: SimDuration| SimDuration::from_nanos((d.nanos() as f64 * factor) as u64);
        CostModel {
            ns_per_flop: base.ns_per_flop * factor,
            ns_per_int: base.ns_per_int * factor,
            ns_per_byte_copy: base.ns_per_byte_copy * factor,
            page_fault: scale(base.page_fault),
            twin: scale(base.twin),
            diff_create: scale(base.diff_create),
            diff_apply: scale(base.diff_apply),
        }
    }

    /// `node`'s crash windows, sorted by crash time.
    pub fn crashes_for(&self, node: usize) -> Vec<Crash> {
        let mut out: Vec<Crash> = self
            .crashes
            .iter()
            .copied()
            .filter(|c| c.node == node)
            .collect();
        out.sort_by_key(|c| c.at);
        out
    }

    /// Compact stable label, e.g. `loss=0.02@7,slow=3x1.5,crash=2@40ms+30ms`;
    /// `none` for the empty plan. Round-trips through [`FaultPlan::parse`]
    /// and is folded into the sweep cache's context hash.
    pub fn label(&self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if let Some(l) = &self.loss {
            parts.push(format!("loss={}@{}", l.drop_prob, l.seed));
        }
        for s in &self.slowdowns {
            parts.push(format!("slow={}x{}", s.node, s.factor));
        }
        for c in &self.crashes {
            parts.push(format!(
                "crash={}@{}+{}",
                c.node,
                fmt_ns(c.at.nanos()),
                fmt_ns(c.down_for.nanos())
            ));
        }
        parts.join(",")
    }

    /// Parse the CLI/label syntax: a comma-separated list of
    /// `loss=P@SEED`, `slow=NODExFACTOR`, and `crash=NODE@AT+DOWN` clauses
    /// (durations take `ns`/`us`/`ms`/`s` suffixes), or `none`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for clause in spec.split(',') {
            let (kind, rest) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?} has no '='"))?;
            match kind {
                "loss" => {
                    let (p, seed) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("loss clause {rest:?} wants P@SEED"))?;
                    let drop_prob: f64 = p
                        .parse()
                        .map_err(|_| format!("bad loss probability {p:?}"))?;
                    if !(0.0..=1.0).contains(&drop_prob) {
                        return Err(format!("loss probability {drop_prob} out of [0,1]"));
                    }
                    let seed: u64 = seed
                        .parse()
                        .map_err(|_| format!("bad loss seed {seed:?}"))?;
                    plan.loss = Some(Loss { drop_prob, seed });
                }
                "slow" => {
                    let (node, factor) = rest
                        .split_once('x')
                        .ok_or_else(|| format!("slow clause {rest:?} wants NODExFACTOR"))?;
                    let node: usize = node
                        .parse()
                        .map_err(|_| format!("bad slow node {node:?}"))?;
                    let factor: f64 = factor
                        .parse()
                        .map_err(|_| format!("bad slow factor {factor:?}"))?;
                    if factor < 1.0 {
                        return Err(format!("slow factor {factor} below 1.0"));
                    }
                    plan.slowdowns.push(Slowdown { node, factor });
                }
                "crash" => {
                    let (node, times) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("crash clause {rest:?} wants NODE@AT+DOWN"))?;
                    let (at, down) = times
                        .split_once('+')
                        .ok_or_else(|| format!("crash clause {rest:?} wants NODE@AT+DOWN"))?;
                    let node: usize = node
                        .parse()
                        .map_err(|_| format!("bad crash node {node:?}"))?;
                    plan.crashes.push(Crash {
                        node,
                        at: SimTime(parse_ns(at)?),
                        down_for: SimDuration::from_nanos(parse_ns(down)?),
                    });
                }
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Render nanoseconds with the largest exact unit suffix.
fn fmt_ns(ns: u64) -> String {
    for (div, unit) in [(1_000_000_000, "s"), (1_000_000, "ms"), (1_000, "us")] {
        if ns > 0 && ns.is_multiple_of(div) {
            return format!("{}{unit}", ns / div);
        }
    }
    format!("{ns}ns")
}

/// Parse a duration like `40ms`, `250us`, `2s`, or `1500ns` to nanoseconds.
fn parse_ns(s: &str) -> Result<u64, String> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1)
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration {s:?} (want e.g. 40ms, 250us, 2s)"))?;
    Ok(n * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_changes_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.label(), "none");
        let net = NetConfig::default();
        let applied = plan.apply_net(&net);
        assert_eq!(applied.base_drop_prob, net.base_drop_prob);
        assert_eq!(applied.seed, net.seed);
        let cost = CostModel::default();
        assert_eq!(plan.cost_for(3, &cost).ns_per_flop, cost.ns_per_flop);
        assert!(plan.crashes_for(0).is_empty());
    }

    #[test]
    fn loss_overrides_net_probability_and_seed() {
        let plan = FaultPlan::none().with_loss(0.02, 7);
        let net = plan.apply_net(&NetConfig::lossless());
        assert_eq!(net.base_drop_prob, 0.02);
        assert_eq!(net.seed, 7);
        // Everything else is untouched.
        assert_eq!(net.latency, NetConfig::lossless().latency);
    }

    #[test]
    fn slowdown_scales_every_cost_uniformly() {
        let plan = FaultPlan::none().with_slowdown(2, 1.5);
        let base = CostModel::default();
        let slow = plan.cost_for(2, &base);
        assert_eq!(slow.ns_per_flop, base.ns_per_flop * 1.5);
        assert_eq!(slow.ns_per_int, base.ns_per_int * 1.5);
        assert_eq!(slow.ns_per_byte_copy, base.ns_per_byte_copy * 1.5);
        assert_eq!(slow.page_fault.nanos(), 60_000);
        assert_eq!(slow.diff_apply.nanos(), 22_500);
        // Other nodes run at full speed.
        assert_eq!(plan.cost_for(1, &base).ns_per_flop, base.ns_per_flop);
    }

    #[test]
    fn crashes_for_filters_and_sorts() {
        let plan = FaultPlan::none()
            .with_crash(2, SimTime(50_000_000), SimDuration::from_millis(10))
            .with_crash(1, SimTime(10_000_000), SimDuration::from_millis(5))
            .with_crash(2, SimTime(20_000_000), SimDuration::from_millis(1));
        let c2 = plan.crashes_for(2);
        assert_eq!(c2.len(), 2);
        assert_eq!(c2[0].at, SimTime(20_000_000));
        assert_eq!(c2[1].at, SimTime(50_000_000));
        assert_eq!(c2[1].up_at(), SimTime(60_000_000));
        assert_eq!(plan.crashes_for(0).len(), 0);
    }

    #[test]
    fn label_round_trips_through_parse() {
        let plan = FaultPlan::none()
            .with_loss(0.02, 7)
            .with_slowdown(3, 1.5)
            .with_crash(2, SimTime(40_000_000), SimDuration::from_millis(30));
        assert_eq!(plan.label(), "loss=0.02@7,slow=3x1.5,crash=2@40ms+30ms");
        assert_eq!(FaultPlan::parse(&plan.label()).unwrap(), plan);
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
    }

    #[test]
    fn parse_accepts_every_duration_unit() {
        let plan = FaultPlan::parse("crash=0@1500ns+250us,crash=1@2s+40ms").unwrap();
        assert_eq!(plan.crashes[0].at, SimTime(1_500));
        assert_eq!(plan.crashes[0].down_for, SimDuration::from_micros(250));
        assert_eq!(plan.crashes[1].at, SimTime(2_000_000_000));
        assert_eq!(plan.crashes[1].down_for, SimDuration::from_millis(40));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "bogus",
            "loss=0.5",
            "loss=2.0@1",
            "slow=1",
            "slow=1x0.5",
            "crash=1@10ms",
            "crash=x@10ms+1ms",
            "flood=9",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
