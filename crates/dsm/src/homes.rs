//! Manager roles (lock homes, the barrier manager, view homes) and the
//! service handler that runs them.
//!
//! Every manager lives on its home node and executes inside that node's
//! service handler — the simulation analogue of TreadMarks' SIGIO request
//! handlers. All handlers are idempotent: the reliable transport may deliver
//! duplicate requests after a retransmission.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use vopp_page::{Diff, PageId, VTime};
use vopp_sim::sync::Mutex;
use vopp_sim::{Handler, ProcId, SvcCtx};
use vopp_simnet::reply;

use crate::msg::{AccessMode, Req, Resp, ViewRecord};
use crate::node::{NodeState, Protocol};

/// A queued lock request.
#[derive(Debug, Clone)]
pub struct LockWaiter {
    /// Requesting processor.
    pub proc: ProcId,
    /// Reply tag of the pending rpc.
    pub tag: u64,
    /// The requester's logged vector time (sizes the grant delta).
    pub vt: VTime,
}

/// State of one lock at its home.
#[derive(Debug, Clone, Default)]
pub struct LockHome {
    /// Current holder, if any.
    pub holder: Option<ProcId>,
    /// FIFO of waiting requests.
    pub queue: VecDeque<LockWaiter>,
}

/// State of the (centralized) barrier manager.
#[derive(Debug, Clone, Default)]
pub struct BarrierHome {
    /// Completed episodes.
    pub episodes_done: u32,
    /// Arrivals of the current episode: proc -> (reply tag, vector time).
    pub arrived: BTreeMap<ProcId, (u64, VTime)>,
}

/// A queued view request.
#[derive(Debug, Clone)]
pub struct ViewWaiter {
    /// Requesting processor.
    pub proc: ProcId,
    /// Reply tag of the pending rpc.
    pub tag: u64,
    /// Read or write access.
    pub mode: AccessMode,
    /// Latest view version already applied at the requester.
    pub have: u32,
}

/// State of one view at its home.
#[derive(Debug, Clone, Default)]
pub struct ViewHome {
    /// Current exclusive holder.
    pub writer: Option<ProcId>,
    /// Current read holders.
    pub readers: BTreeSet<ProcId>,
    /// FIFO of waiting requests.
    pub queue: VecDeque<ViewWaiter>,
    /// Number of write releases so far (the view's version).
    pub version: u32,
    /// Release history (`VC_d` grants send the slice a requester missed).
    /// Records are immutable once appended and `Arc`-shared with grants.
    pub records: Vec<Arc<ViewRecord>>,
    /// `VC_sd`: per page, the version-tagged diffs of each release, shared
    /// with the releaser's diff store. At grant time the diffs a requester
    /// is missing are merged into a single integrated diff per page (the
    /// CCGrid'05 "single diff" piggy-backed on the grant).
    pub integrated: BTreeMap<PageId, Vec<(u32, Arc<Diff>)>>,
    /// Last version assigned to each releaser (idempotent release acks).
    pub last_write_release: BTreeMap<ProcId, u32>,
}

/// True when `VOPP_TRACE` is set: protocol events are logged to stderr.
pub fn trace_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("VOPP_TRACE").is_some())
}

fn trace_req(now: vopp_sim::SimTime, me: ProcId, src: ProcId, req: &Req) {
    let what = match req {
        Req::LockAcquire { lock, .. } => format!("lock-acquire {lock}"),
        Req::LockRelease { lock, records } => {
            format!("lock-release {lock} (+{} records)", records.len())
        }
        Req::BarrierArrive {
            episode, records, ..
        } => {
            format!("barrier-arrive #{episode} (+{} records)", records.len())
        }
        Req::ViewAcquire { view, mode, have } => {
            format!("view-acquire {view} {mode:?} have={have}")
        }
        Req::ViewRelease {
            view, mode, pages, ..
        } => {
            format!("view-release {view} {mode:?} ({} pages)", pages.len())
        }
        Req::DiffReq { page, intervals } => {
            format!("diff-req page {page} ({} intervals)", intervals.len())
        }
        Req::PageReq { page } => format!("page-req {page}"),
        Req::HomeFlush { items } => format!("home-flush ({} pages)", items.len()),
    };
    eprintln!("[vopp {now}] node {me} <- {src}: {what}");
}

/// Build the service handler for one node.
pub fn make_handler(node: Arc<Mutex<NodeState>>) -> Handler {
    Box::new(move |svc, pkt| {
        let tag = pkt.tag;
        let src = pkt.src;
        let req = pkt.expect::<Req>();
        let mut n = node.lock();
        if trace_enabled() {
            trace_req(svc.now(), n.me, src, &req);
        }
        handle(&mut n, svc, src, tag, req);
    })
}

fn handle(n: &mut NodeState, svc: &mut SvcCtx<'_>, src: ProcId, tag: u64, req: Req) {
    match req {
        Req::LockAcquire { lock, vt } => {
            let mut h = n.locks.remove(&lock).unwrap_or_default();
            if h.holder == Some(src) {
                // Duplicate of a request we already granted.
                send_lock_grant(n, svc, src, tag, &vt);
            } else if h.holder.is_none() && h.queue.is_empty() {
                h.holder = Some(src);
                send_lock_grant(n, svc, src, tag, &vt);
            } else if let Some(w) = h.queue.iter_mut().find(|w| w.proc == src) {
                w.tag = tag;
                w.vt = vt;
            } else {
                h.queue.push_back(LockWaiter { proc: src, tag, vt });
            }
            n.locks.insert(lock, h);
        }

        Req::LockRelease { lock, records } => {
            if let Some(maxl) = records.iter().map(|r| r.lamport).max() {
                n.lamport_sync(maxl);
            }
            n.merge_logged(&records);
            let mut h = n.locks.remove(&lock).unwrap_or_default();
            if h.holder == Some(src) {
                h.holder = None;
                if let Some(w) = h.queue.pop_front() {
                    h.holder = Some(w.proc);
                    send_lock_grant(n, svc, w.proc, w.tag, &w.vt);
                }
            }
            // Duplicate releases (holder already moved on) are just acked.
            n.locks.insert(lock, h);
            let ack = Resp::Ack;
            reply(svc, src, ack.wire_bytes(), tag, Arc::new(ack));
        }

        Req::BarrierArrive {
            episode,
            records,
            vt,
        } => {
            if let Some(maxl) = records.iter().map(|r| r.lamport).max() {
                n.lamport_sync(maxl);
            }
            n.merge_logged(&records);
            if episode < n.barrier.episodes_done {
                // The release for this episode was lost: regenerate it.
                send_barrier_release(n, svc, src, tag, &vt);
                return;
            }
            debug_assert_eq!(episode, n.barrier.episodes_done, "barrier episode skew");
            n.barrier.arrived.insert(src, (tag, vt));
            if n.barrier.arrived.len() == n.n {
                let arrived = std::mem::take(&mut n.barrier.arrived);
                n.barrier.episodes_done += 1;
                for (proc, (ptag, pvt)) in arrived {
                    send_barrier_release(n, svc, proc, ptag, &pvt);
                }
            }
        }

        Req::ViewAcquire { view, mode, have } => {
            let mut h = n.views.remove(&view).unwrap_or_default();
            let already = match mode {
                AccessMode::Write => h.writer == Some(src),
                AccessMode::Read => h.readers.contains(&src),
            };
            let can = match mode {
                AccessMode::Write => {
                    h.writer.is_none() && h.readers.is_empty() && h.queue.is_empty()
                }
                AccessMode::Read => h.writer.is_none() && h.queue.is_empty(),
            };
            if already {
                send_view_grant(n, &h, svc, view, src, tag, have);
            } else if can {
                admit(&mut h, src, mode);
                send_view_grant(n, &h, svc, view, src, tag, have);
            } else if let Some(w) = h.queue.iter_mut().find(|w| w.proc == src) {
                w.tag = tag;
                w.have = have;
                w.mode = mode;
            } else {
                h.queue.push_back(ViewWaiter {
                    proc: src,
                    tag,
                    mode,
                    have,
                });
            }
            n.views.insert(view, h);
        }

        Req::ViewRelease {
            view,
            mode: AccessMode::Write,
            interval,
            lamport,
            pages,
            diffs,
        } => {
            n.lamport_sync(lamport);
            let mut h = n.views.remove(&view).unwrap_or_default();
            if h.writer == Some(src) {
                h.writer = None;
                let version = if pages.is_empty() {
                    h.version
                } else {
                    h.version += 1;
                    let v = h.version;
                    h.records.push(Arc::new(ViewRecord {
                        version: v,
                        id: interval.expect("write release with pages but no interval id"),
                        lamport,
                        pages,
                    }));
                    match n.protocol {
                        Protocol::VcSd => {
                            for (p, d) in diffs {
                                h.integrated.entry(p).or_default().push((v, d));
                            }
                        }
                        Protocol::VcRdma => {
                            // The diffs travelled out-of-band: a one-sided
                            // write deposited them in this node's preposted
                            // buffer before the (slim) release request, and
                            // link FIFO guarantees they have landed by now.
                            // Retransmitted duplicates take the else branch
                            // below and never reach this take.
                            let data = svc
                                .take_one_sided(src, crate::msg::rdma_release_tag(view))
                                .expect("VC_rdma release data must precede the release request");
                            for (p, d) in data.expect::<Vec<(PageId, Arc<Diff>)>>() {
                                h.integrated.entry(p).or_default().push((v, d));
                            }
                        }
                        _ => {}
                    }
                    v
                };
                h.last_write_release.insert(src, version);
                let ack = Resp::ReleaseAck { version };
                reply(svc, src, ack.wire_bytes(), tag, Arc::new(ack));
                grant_next(n, &mut h, svc, view);
            } else {
                // Duplicate release after the original was processed.
                let version = h.last_write_release.get(&src).copied().unwrap_or(h.version);
                let ack = Resp::ReleaseAck { version };
                reply(svc, src, ack.wire_bytes(), tag, Arc::new(ack));
            }
            n.views.insert(view, h);
        }

        Req::ViewRelease {
            view,
            mode: AccessMode::Read,
            ..
        } => {
            let mut h = n.views.remove(&view).unwrap_or_default();
            h.readers.remove(&src);
            let ack = Resp::Ack;
            reply(svc, src, ack.wire_bytes(), tag, Arc::new(ack));
            if h.readers.is_empty() && h.writer.is_none() {
                grant_next(n, &mut h, svc, view);
            }
            n.views.insert(view, h);
        }

        Req::DiffReq { page, intervals } => {
            let items = n.serve_diffs(page, &intervals);
            let resp = Resp::DiffResp { items };
            reply(svc, src, resp.wire_bytes(), tag, Arc::new(resp));
        }

        Req::HomeFlush { items } => {
            // Apply eagerly so this home's copies stay current. If the
            // application thread has a live twin on a page, update the twin
            // too, so the flushed words are not re-attributed to this node's
            // next diff (concurrent writers are word-disjoint in DRF
            // programs).
            debug_assert_eq!(n.protocol, Protocol::Hlrc);
            for (page, diff) in items {
                debug_assert_eq!(n.page_home(page), n.me, "flush sent to wrong home");
                n.mem.apply_diff_with_twin(page, diff.as_ref());
                n.stats.diffs_applied += 1;
            }
            let ack = Resp::Ack;
            reply(svc, src, ack.wire_bytes(), tag, Arc::new(ack));
        }

        Req::PageReq { page } => {
            // Serve the full current content if this node still holds a
            // valid copy; otherwise the requester falls back to diffs.
            // (For view pages the copy is provably valid while the
            // requester holds the view; for LRC single-writer pages an
            // invalidation race is possible in principle.)
            let content = if n.mem.state(page) == vopp_page::PageState::Invalid {
                None
            } else {
                Some(n.mem.clone_page(page))
            };
            let resp = Resp::PageResp { content };
            reply(svc, src, resp.wire_bytes(), tag, Arc::new(resp));
        }
    }
}

fn admit(h: &mut ViewHome, proc: ProcId, mode: AccessMode) {
    match mode {
        AccessMode::Write => h.writer = Some(proc),
        AccessMode::Read => {
            h.readers.insert(proc);
        }
    }
}

/// Admit as many queued requests as compatibility allows: one writer, or a
/// maximal batch of consecutive readers.
fn grant_next(n: &NodeState, h: &mut ViewHome, svc: &mut SvcCtx<'_>, view: crate::layout::ViewId) {
    while let Some(front) = h.queue.front() {
        let ok = match front.mode {
            AccessMode::Write => h.writer.is_none() && h.readers.is_empty(),
            AccessMode::Read => h.writer.is_none(),
        };
        if !ok {
            break;
        }
        let w = h.queue.pop_front().unwrap();
        admit(h, w.proc, w.mode);
        send_view_grant(n, h, svc, view, w.proc, w.tag, w.have);
        if w.mode == AccessMode::Write {
            break;
        }
    }
}

fn send_lock_grant(n: &NodeState, svc: &mut SvcCtx<'_>, dst: ProcId, tag: u64, req_vt: &VTime) {
    debug_assert!(
        n.protocol.is_lrc_family(),
        "locks are a traditional-API feature"
    );
    let records = n.delta_since(req_vt);
    let resp = Resp::LockGrant {
        records,
        vt: n.logged_vt.clone(),
        lamport: n.lamport,
    };
    reply(svc, dst, resp.wire_bytes(), tag, Arc::new(resp));
}

fn send_barrier_release(
    n: &NodeState,
    svc: &mut SvcCtx<'_>,
    dst: ProcId,
    tag: u64,
    req_vt: &VTime,
) {
    let resp = if n.protocol.is_vc() {
        // VC barriers synchronize only: no consistency payload (paper §3.2).
        Resp::BarrierRelease {
            records: Vec::new(),
            vt: VTime::zero(0),
            lamport: n.lamport,
        }
    } else {
        Resp::BarrierRelease {
            records: n.delta_since(req_vt),
            vt: n.logged_vt.clone(),
            lamport: n.lamport,
        }
    };
    reply(svc, dst, resp.wire_bytes(), tag, Arc::new(resp));
}

fn send_view_grant(
    n: &NodeState,
    h: &ViewHome,
    svc: &mut SvcCtx<'_>,
    view: crate::layout::ViewId,
    dst: ProcId,
    tag: u64,
    have: u32,
) {
    // VC_rdma moves the integrated diffs by a one-sided write into the
    // requester's preposted buffer, issued ahead of the control reply so
    // link FIFO lands the data first. The grant reply itself stays slim.
    let mut one_sided: Vec<(PageId, Arc<Diff>)> = Vec::new();
    let (records, diffs) = match n.protocol {
        // ScC scoped grants look exactly like VC_d view grants: release
        // records newer than the requester's version, diffs on fault.
        // A requester's own releases are elided — it applied them locally —
        // except when it asks from version 0: in steady state no own
        // records predate a node's first acquire, so `have == 0` with own
        // history means a crashed node rebuilding from the home, and it
        // needs its own releases back (their diffs still sit in its durable
        // diff store).
        Protocol::VcD | Protocol::ScC => (
            h.records
                .iter()
                .filter(|r| r.version > have && (have == 0 || r.id.owner != dst))
                .cloned()
                .collect(),
            Vec::new(),
        ),
        Protocol::VcSd | Protocol::VcRdma => {
            let integrated: Vec<(PageId, Arc<Diff>)> = h
                .integrated
                .iter()
                .filter(|(_, vs)| vs.last().is_some_and(|(v, _)| *v > have))
                .map(|(p, vs)| {
                    // Diff integration: merge every release the requester
                    // missed into one diff, newest last (last writer wins).
                    // A single missed release is shared as-is — the common
                    // case pays no copy at all.
                    let mut missed = vs.iter().filter(|(v, _)| *v > have).map(|(_, d)| d);
                    let first = missed.next().expect("filter guarantees a missed release");
                    match missed.next() {
                        None => (*p, Arc::clone(first)),
                        Some(second) => {
                            let mut merged = first.as_ref().clone();
                            merged.merge_from(second);
                            for d in missed {
                                merged.merge_from(d);
                            }
                            (*p, Arc::new(merged))
                        }
                    }
                })
                .collect();
            if n.protocol == Protocol::VcRdma {
                one_sided = integrated;
                (Vec::new(), Vec::new())
            } else {
                (Vec::new(), integrated)
            }
        }
        Protocol::LrcD | Protocol::Hlrc => {
            unreachable!("views/scopes are not a homeless/home-based LRC feature")
        }
    };
    let mut data_bytes = 0u64;
    if !one_sided.is_empty() {
        let wire = crate::msg::one_sided_diffs_wire_bytes(&one_sided);
        data_bytes = wire as u64;
        svc.send(
            dst,
            wire,
            vopp_sim::DeliveryClass::OneSided,
            crate::msg::rdma_grant_tag(view),
            Arc::new(one_sided),
        );
    }
    let resp = Resp::ViewGrant {
        records,
        diffs,
        version: h.version,
        lamport: n.lamport,
    };
    let bytes = resp.wire_bytes();
    svc.trace(vopp_sim::EventKind::ViewGrantSent {
        view: view as u64,
        to: dst,
        version: h.version as u64,
        bytes: bytes as u64 + data_bytes,
    });
    reply(svc, dst, bytes, tag, Arc::new(resp));
}
