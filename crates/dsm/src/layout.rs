//! The shared address-space layout: allocations and view definitions.
//!
//! Every node of an SPMD DSM program must agree on where shared objects
//! live. A [`Layout`] is built once by the driver (allocations + views) and
//! shared read-only by all simulated nodes.
//!
//! Views follow the paper's rules (§2): they are fixed for the whole program
//! and must not overlap. This implementation additionally page-aligns each
//! view so no two views share a page.

use std::ops::Range;
use std::sync::Arc;

use vopp_page::{pages_spanned, Addr, PageId, SharedHeap, PAGE_SIZE};

/// Identifier of a view (dense, 0-based).
pub type ViewId = u32;

/// A registered view: a page-aligned region of shared memory.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// The view's id.
    pub id: ViewId,
    /// First byte address.
    pub base: Addr,
    /// Requested length in bytes (the backing region is padded to pages).
    pub len: usize,
    /// Pages backing the view.
    pub pages: Range<PageId>,
    /// Preferred manager node (usually the primary writer, like home-based
    /// LRC home assignment); `None` falls back to round-robin.
    pub home: Option<usize>,
}

/// The program's shared-memory layout.
#[derive(Debug, Default)]
pub struct Layout {
    heap: SharedHeap,
    views: Vec<ViewDef>,
    page_view: Vec<Option<ViewId>>,
}

impl Layout {
    /// An empty layout.
    pub fn new() -> Layout {
        Layout::default()
    }

    /// Allocate plain shared memory (traditional programs). No page
    /// alignment is forced, so distinct objects may share pages — the false
    /// sharing the paper's traditional applications suffer from.
    pub fn alloc(&mut self, len: usize, align: usize) -> Addr {
        let a = self.heap.alloc(len, align);
        self.sync_page_map();
        a
    }

    /// Register a view of `len` bytes (VOPP programs). Returns its id and
    /// base address.
    pub fn add_view(&mut self, len: usize) -> (ViewId, Addr) {
        self.add_view_homed(len, None)
    }

    /// Register a view with an explicit manager node (usually its primary
    /// writer — the placement a home-based DSM would choose).
    pub fn add_view_homed(&mut self, len: usize, home: Option<usize>) -> (ViewId, Addr) {
        let base = self.heap.alloc_page_aligned(len);
        let id = self.views.len() as ViewId;
        let pages = pages_spanned(base, len.max(1));
        self.views.push(ViewDef {
            id,
            base,
            len,
            pages: pages.clone(),
            home,
        });
        self.sync_page_map();
        for p in pages {
            self.page_view[p] = Some(id);
        }
        (id, base)
    }

    /// Register `n` consecutive views of `len` bytes each (a common pattern:
    /// one view per processor). Returns the id of the first; ids are dense.
    pub fn add_views(&mut self, n: usize, len: usize) -> Vec<(ViewId, Addr)> {
        (0..n).map(|_| self.add_view(len)).collect()
    }

    fn sync_page_map(&mut self) {
        let need = self.heap.pages_needed();
        if self.page_view.len() < need {
            self.page_view.resize(need, None);
        }
    }

    /// Number of registered views.
    pub fn nviews(&self) -> usize {
        self.views.len()
    }

    /// Definition of view `v`.
    pub fn view(&self, v: ViewId) -> &ViewDef {
        &self.views[v as usize]
    }

    /// All views.
    pub fn views(&self) -> &[ViewDef] {
        &self.views
    }

    /// The view containing page `p`, if any.
    pub fn view_of_page(&self, p: PageId) -> Option<ViewId> {
        self.page_view.get(p).copied().flatten()
    }

    /// Total pages in the shared address space.
    pub fn npages(&self) -> usize {
        self.heap.pages_needed()
    }

    /// Bytes allocated.
    pub fn bytes_used(&self) -> usize {
        self.heap.bytes_used()
    }

    /// Freeze into a shareable handle.
    pub fn freeze(self) -> Arc<Layout> {
        Arc::new(self)
    }
}

/// Validate that views are sane (non-overlapping is guaranteed by
/// construction; this checks page alignment and coverage for tests).
pub fn check_views(layout: &Layout) -> Result<(), String> {
    for v in layout.views() {
        if v.base % PAGE_SIZE != 0 {
            return Err(format!("view {} not page aligned", v.id));
        }
        for p in v.pages.clone() {
            if layout.view_of_page(p) != Some(v.id) {
                return Err(format!("page {} not mapped to view {}", p, v.id));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_are_page_aligned_and_disjoint() {
        let mut l = Layout::new();
        let a = l.alloc(100, 8);
        let (v0, b0) = l.add_view(10);
        let (v1, b1) = l.add_view(PAGE_SIZE + 1);
        let (v2, b2) = l.add_view(64);
        assert_eq!(a, 0);
        assert_eq!(b0 % PAGE_SIZE, 0);
        assert_eq!(b1, b0 + PAGE_SIZE);
        assert_eq!(b2, b1 + 2 * PAGE_SIZE);
        assert_eq!((v0, v1, v2), (0, 1, 2));
        check_views(&l).unwrap();
    }

    #[test]
    fn page_view_mapping() {
        let mut l = Layout::new();
        let _ = l.alloc(5000, 1); // spans pages 0..2
        let (v, base) = l.add_view(8192);
        let first = base / PAGE_SIZE;
        assert_eq!(l.view_of_page(0), None);
        assert_eq!(l.view_of_page(first), Some(v));
        assert_eq!(l.view_of_page(first + 1), Some(v));
        assert_eq!(l.npages(), first + 2);
    }

    #[test]
    fn add_views_bulk() {
        let mut l = Layout::new();
        let vs = l.add_views(4, 100);
        assert_eq!(vs.len(), 4);
        assert_eq!(l.nviews(), 4);
        for (i, (v, _)) in vs.iter().enumerate() {
            assert_eq!(*v as usize, i);
        }
    }

    #[test]
    fn plain_allocs_can_share_pages() {
        let mut l = Layout::new();
        let a = l.alloc(8, 8);
        let b = l.alloc(8, 8);
        // Same page: the substrate for false sharing.
        assert_eq!(a / PAGE_SIZE, b / PAGE_SIZE);
        assert_eq!(l.view_of_page(0), None);
    }
}
