#![warn(missing_docs)]

//! # vopp-dsm — the three DSM systems of the paper
//!
//! * **LRC_d** — diff-based Lazy Release Consistency (TreadMarks-style):
//!   twins, word-granularity diffs, write notices with vector timestamps, an
//!   invalidate protocol with fault-time diff requests, and barriers that
//!   perform centralized whole-memory consistency maintenance.
//! * **VC_d** — View-based Consistency on the same machinery: consistency is
//!   maintained *per view* at `acquire_view`; barriers only synchronize.
//! * **VC_sd** — the optimal VC implementation (CCGrid'05): a single
//!   integrated diff per page, piggy-backed on the view-grant message — an
//!   update protocol with zero fault-time diff requests.
//!
//! The crate provides the per-node protocol engine ([`NodeState`]), the
//! manager roles ([`homes`]), the application-facing context ([`DsmCtx`])
//! with both the traditional lock/barrier API and the VOPP view primitives,
//! and the cluster runtime ([`run_cluster`]) that produces the statistics
//! reported in the paper's tables ([`RunStats`]).

/// Wire size of a full page transfer payload.
pub(crate) const PAGE_SIZE_WIRE: usize = vopp_page::PAGE_SIZE;

pub mod api;
pub mod cost;
pub mod fault;
pub mod homes;
pub mod layout;
pub mod msg;
pub mod node;
pub mod runtime;
pub mod stats;

pub use api::DsmCtx;
pub use cost::{CostModel, CpuDebt};
pub use fault::{Crash, FaultPlan, Loss, Slowdown};
pub use layout::{check_views, Layout, ViewDef, ViewId};
pub use msg::{AccessMode, Req, Resp, ViewRecord};
pub use node::{NodeState, PendingFetch, Protocol, StoredDiff};
pub use runtime::{run_cluster, ClusterConfig, ClusterOutcome};
pub use stats::{NodeMetrics, NodeStats, RunStats, ViewStats, ViewStatsMap};
pub use vopp_metrics::{Breakdown, Histogram, Phase, Registry, Summary};
pub use vopp_racecheck::{
    AccessRec, DisciplineRule, Mode as RacecheckMode, RaceChecker, Violation,
};
