//! Wiring: build a simulated cluster, run a DSM program on it, collect the
//! paper's statistics.

use std::sync::Arc;

use vopp_racecheck::RaceChecker;
use vopp_sim::sync::Mutex;
use vopp_sim::{Sim, SimDuration, Tracer};
use vopp_simnet::{EthernetModel, NetConfig};

use crate::api::DsmCtx;
use crate::cost::CostModel;
use crate::fault::FaultPlan;
use crate::homes::make_handler;
use crate::layout::Layout;
use crate::node::{NodeState, Protocol};
use crate::stats::{NodeStats, RunStats};

/// Everything configurable about a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of processors.
    pub nprocs: usize,
    /// Which DSM implementation to run.
    pub protocol: Protocol,
    /// Network parameters.
    pub net: NetConfig,
    /// CPU cost model.
    pub cost: CostModel,
    /// Retransmission timeout for barrier waits (longer than the default
    /// RPC timeout: the reply is legitimately deferred until all arrive).
    pub barrier_timeout: SimDuration,
    /// Structured event tracer shared by every layer of the run (kernel,
    /// network, protocol). `None` (the default) records nothing and adds
    /// no per-event work beyond a pointer test.
    pub tracer: Option<Arc<Tracer>>,
    /// Per-node page-recycling pool capacity: the maximum number of free
    /// 4 KiB buffers each node retains for twin creation and page rebuilds.
    /// Purely a wall-clock/footprint knob — pool hits and misses never
    /// touch virtual time, so any value produces identical results.
    pub page_pool_cap: usize,
    /// Dynamic correctness checker shared by every node of the run (see
    /// `vopp-racecheck`). `None` (the default) checks nothing and adds no
    /// per-access work beyond a pointer test; attaching a checker never
    /// advances virtual time, so results and statistics are unchanged.
    pub racecheck: Option<Arc<RaceChecker>>,
    /// Deterministic fault schedule: elevated loss rewrites the network
    /// config, slowdowns scale individual nodes' cost models, and crash
    /// windows are read by crash-aware workloads (the serving benchmark)
    /// via [`ClusterConfig::faults`]. The default empty plan changes
    /// nothing.
    pub faults: FaultPlan,
    /// Causal profiler for critical-path extraction. When set, every kernel
    /// wake records its causal predecessor and [`RunStats::crit`] carries
    /// the extracted path. Recording never advances virtual time: results,
    /// statistics, and trace streams are byte-identical either way.
    ///
    /// [`RunStats::crit`]: crate::RunStats::crit
    pub profiler: Option<Arc<vopp_trace::CausalProfiler>>,
    /// Intra-run parallel kernel width: how many event-loop workers the
    /// simulation kernel may use for this run (`0`, the default, inherits
    /// the process-wide setting, see [`vopp_sim::set_sim_workers_default`];
    /// [`vopp_sim::SIM_WORKERS_AUTO`] sizes the pool from the host and
    /// engages it adaptively by event density).
    /// Any value produces byte-identical results, statistics, traces, and
    /// critical paths — the kernel only parallelizes causally independent
    /// windows and merges them in virtual-time order. Ignored (forced to 1)
    /// when a race checker is attached: the checker observes accesses in
    /// wall-clock callback order, which only the sequential kernel keeps
    /// deterministic.
    pub sim_workers: usize,
}

impl ClusterConfig {
    /// A cluster of `nprocs` running `protocol` with default calibration.
    pub fn new(nprocs: usize, protocol: Protocol) -> ClusterConfig {
        ClusterConfig {
            nprocs,
            protocol,
            net: NetConfig::default(),
            cost: CostModel::default(),
            barrier_timeout: SimDuration::from_secs(2),
            tracer: None,
            page_pool_cap: vopp_page::PagePool::CAP,
            racecheck: None,
            faults: FaultPlan::none(),
            profiler: None,
            sim_workers: 0,
        }
    }

    /// Same cluster with a lossless network (tests, calibration).
    pub fn lossless(nprocs: usize, protocol: Protocol) -> ClusterConfig {
        ClusterConfig {
            net: NetConfig::lossless(),
            ..ClusterConfig::new(nprocs, protocol)
        }
    }
}

/// The outcome of a cluster run: per-node results plus statistics.
pub struct ClusterOutcome<R> {
    /// Per-node return values of the program body.
    pub results: Vec<R>,
    /// The paper's statistics for this run.
    pub stats: RunStats,
}

/// Run `body` on every node of a simulated cluster.
///
/// `layout` describes the shared address space (identical on all nodes);
/// `body` is the SPMD program, branching on [`DsmCtx::me`] where needed.
///
/// ```
/// use vopp_dsm::{run_cluster, ClusterConfig, Layout, Protocol};
///
/// let mut layout = Layout::new();
/// let (view, addr) = layout.add_view(4);
/// let cfg = ClusterConfig::lossless(4, Protocol::VcSd);
/// let out = run_cluster(&cfg, layout.freeze(), move |ctx| {
///     ctx.acquire_view(view);
///     ctx.update_u32(addr, |x| x + 1);
///     ctx.release_view(view);
///     ctx.barrier();
///     ctx.acquire_rview(view);
///     let total = ctx.read_u32(addr);
///     ctx.release_rview(view);
///     total
/// });
/// assert_eq!(out.results, vec![4, 4, 4, 4]);
/// assert_eq!(out.stats.diff_requests(), 0); // VC_sd: update protocol
/// ```
pub fn run_cluster<R, F>(cfg: &ClusterConfig, layout: Arc<Layout>, body: F) -> ClusterOutcome<R>
where
    R: Send,
    F: Fn(&DsmCtx<'_>) -> R + Send + Sync,
{
    let n = cfg.nprocs;
    assert!(n > 0);
    let effective_net = cfg.faults.apply_net(&cfg.net);
    // Each node's RPC endpoint retransmits on the effective network's
    // timescale: the historical 1 s on the paper testbed, milliseconds on
    // modern generations.
    let rexmit_timeout = effective_net.rexmit_timeout;
    let mut model = EthernetModel::new(n, effective_net);
    if let Some(tr) = &cfg.tracer {
        model.set_tracer(tr.clone());
    }
    let net_stats = model.stats_handle();
    let mut sim = Sim::new(n, Box::new(model));
    if cfg.sim_workers > 0 {
        sim.set_workers(cfg.sim_workers);
    }
    if cfg.racecheck.is_some() {
        // The checker sees accesses in callback (wall-clock) order; only the
        // sequential kernel makes that order a pure function of the seed.
        sim.set_workers(1);
    }
    if let Some(tr) = &cfg.tracer {
        sim.set_tracer(tr.clone());
    }
    if let Some(prof) = &cfg.profiler {
        sim.set_profiler(prof.clone());
    }

    let nodes: Vec<Arc<Mutex<NodeState>>> = (0..n)
        .map(|p| {
            Arc::new(Mutex::new(NodeState::new(
                p,
                n,
                cfg.protocol,
                cfg.faults.cost_for(p, &cfg.cost),
                layout.clone(),
                cfg.page_pool_cap,
            )))
        })
        .collect();
    for (p, node) in nodes.iter().enumerate() {
        sim.set_handler(p, make_handler(node.clone()));
    }

    let nodes_ref = &nodes;
    let barrier_timeout = cfg.barrier_timeout;
    let racecheck = &cfg.racecheck;
    let out = sim.run(move |ctx| {
        let dctx = DsmCtx::new(
            ctx,
            nodes_ref[ctx.me()].clone(),
            barrier_timeout,
            rexmit_timeout,
            racecheck.clone(),
        );
        let r = body(&dctx);
        dctx.finish();
        r
    });

    let mut agg = NodeStats::default();
    let mut node_breakdowns = Vec::with_capacity(n);
    for (p, node) in nodes.iter().enumerate() {
        let node = node.lock();
        let bd = node.stats.metrics.breakdown;
        // Phase accounting must classify every nanosecond of the node's
        // virtual time, and must agree with the kernel's independent
        // CPU-vs-blocked split. A mismatch means a blocking call or a debt
        // charge slipped past the accounting brackets in `api.rs`.
        debug_assert_eq!(
            bd.total_ns(),
            out.proc_end[p].nanos(),
            "node {p}: phase breakdown does not sum to run time"
        );
        debug_assert_eq!(
            bd.cpu_ns(),
            out.proc_times[p].compute_ns,
            "node {p}: compute+proto-cpu disagrees with kernel compute time"
        );
        debug_assert_eq!(
            bd.blocked_ns(),
            out.proc_times[p].blocked_ns,
            "node {p}: wait phases disagree with kernel blocked time"
        );
        node_breakdowns.push(bd);
        agg.absorb(&node.stats);
    }
    let net = *net_stats.lock();
    let crit = cfg.profiler.as_ref().map(|prof| {
        let ends: Vec<u64> = out.proc_end.iter().map(|t| t.nanos()).collect();
        Arc::new(vopp_metrics::extract(&prof.take(), &ends))
    });
    ClusterOutcome {
        results: out.results,
        stats: RunStats {
            time: out.end_time,
            nprocs: n,
            nodes: agg,
            net,
            node_breakdowns,
            node_end: out.proc_end.clone(),
            crit,
        },
    }
}
