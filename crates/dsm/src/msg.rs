//! Protocol messages and their wire-size accounting.
//!
//! Payloads travel in-process (no serialization), but each message computes
//! the exact size it would occupy on the wire so the `Data` and `Num. Msg`
//! statistics match what a real implementation would produce.

use std::sync::Arc;

use vopp_page::{Diff, IntervalId, IntervalRecord, PageBuf, PageId, VTime, NOTICE_WIRE_BYTES};
use vopp_simnet::HEADER_BYTES;

use crate::layout::ViewId;

/// Read/write mode of a view acquisition (paper: `acquire_view` vs
/// `acquire_Rview`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Exclusive writer access.
    Write,
    /// Shared read-only access.
    Read,
}

/// A view-scoped interval record: the unit of consistency history kept by a
/// view home. `version` totally orders releases of one view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewRecord {
    /// Release sequence number within the view (1-based).
    pub version: u32,
    /// The writer-side interval holding the diffs.
    pub id: IntervalId,
    /// Happens-before scalar for diff application order.
    pub lamport: u64,
    /// Pages dirtied by the release.
    pub pages: Vec<PageId>,
}

impl ViewRecord {
    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        20 + 4 * self.pages.len()
    }
}

/// Requests (service-handler class).
#[derive(Debug, Clone)]
pub enum Req {
    /// Traditional API: acquire lock `lock`; `vt` is the requester's logged
    /// vector time, so the grant only carries unseen interval records.
    LockAcquire {
        /// Lock id.
        lock: u32,
        /// Requester's logged vector time.
        vt: VTime,
    },
    /// Traditional API: release a lock, pushing interval records the home
    /// may not have seen. Records are immutable once logged, so they are
    /// shared by `Arc` rather than deep-copied per message.
    LockRelease {
        /// Lock id.
        lock: u32,
        /// Interval records the home may be missing.
        records: Vec<Arc<IntervalRecord>>,
    },
    /// Arrive at barrier `episode`, pushing this node's new interval records
    /// (empty under VC: barriers synchronize only).
    BarrierArrive {
        /// 0-based barrier episode.
        episode: u32,
        /// New interval records (empty under VC).
        records: Vec<Arc<IntervalRecord>>,
        /// The arriver's logged vector time.
        vt: VTime,
    },
    /// VOPP: acquire a view; `have` is the latest view version already
    /// applied locally.
    ViewAcquire {
        /// View id.
        view: ViewId,
        /// Read or write access.
        mode: AccessMode,
        /// Latest view version already applied at the requester.
        have: u32,
    },
    /// VOPP: release a view. Write releases carry the dirtied pages (and,
    /// under `VC_sd`, the diffs themselves for integration at the home).
    ViewRelease {
        /// View id.
        view: ViewId,
        /// Read or write access being released.
        mode: AccessMode,
        /// The writer-side interval of this release (write mode, dirty).
        interval: Option<IntervalId>,
        /// Releaser's happens-before scalar.
        lamport: u64,
        /// Pages dirtied (write mode).
        pages: Vec<PageId>,
        /// The diffs themselves (`VC_sd` only), shared with the releaser's
        /// diff store.
        diffs: Vec<(PageId, Arc<Diff>)>,
    },
    /// Fetch the diffs of specific intervals of one page from their creator
    /// (the invalidate-protocol fault path).
    DiffReq {
        /// Faulted page.
        page: PageId,
        /// The intervals whose diffs are needed.
        intervals: Vec<IntervalId>,
    },
    /// Fetch the full current content of a *view* page from its most recent
    /// writer. Used by `VC_d` when many per-interval diffs have accumulated:
    /// view writes are serialized, so the last writer's copy is complete —
    /// one page transfer replaces a fan-out of diff fetches (the classic
    /// TreadMarks "get whole page" escape hatch).
    PageReq {
        /// The page whose full content is requested.
        page: PageId,
    },
    /// HLRC: eagerly flush interval diffs to the pages' home node, which
    /// applies them immediately so its copies stay current.
    HomeFlush {
        /// `(page, diff)` pairs for pages homed at the destination.
        items: Vec<(PageId, Arc<Diff>)>,
    },
}

impl Req {
    /// Full wire size, including headers.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES
            + match self {
                Req::LockAcquire { vt, .. } => 4 + vt.wire_bytes(),
                Req::LockRelease { records, .. } => {
                    4 + records.iter().map(|r| r.wire_bytes()).sum::<usize>()
                }
                Req::BarrierArrive { records, vt, .. } => {
                    8 + vt.wire_bytes() + records.iter().map(|r| r.wire_bytes()).sum::<usize>()
                }
                Req::ViewAcquire { .. } => 9,
                Req::ViewRelease { pages, diffs, .. } => {
                    21 + 4 * pages.len() + diffs.iter().map(|(_, d)| d.wire_bytes()).sum::<usize>()
                }
                Req::DiffReq { intervals, .. } => 4 + 8 * intervals.len(),
                Req::PageReq { .. } => 4,
                Req::HomeFlush { items } => {
                    items.iter().map(|(_, d)| 4 + d.wire_bytes()).sum::<usize>()
                }
            }
    }
}

/// Replies (application/mailbox class). Every reply answers one [`Req`].
#[derive(Debug, Clone)]
pub enum Resp {
    /// Generic acknowledgement.
    Ack,
    /// Lock granted: the interval records the requester was missing, the
    /// grantor's vector time to advance to, and its lamport clock.
    LockGrant {
        /// Interval records the requester was missing.
        records: Vec<Arc<IntervalRecord>>,
        /// Grantor's logged vector time (consistency target).
        vt: VTime,
        /// Grantor's happens-before scalar.
        lamport: u64,
    },
    /// Barrier released (same payload as a lock grant; empty under VC).
    BarrierRelease {
        /// Interval records the arriver was missing (empty under VC).
        records: Vec<Arc<IntervalRecord>>,
        /// Manager's logged vector time (empty under VC).
        vt: VTime,
        /// Manager's happens-before scalar.
        lamport: u64,
    },
    /// View granted. `VC_d` sends history records (invalidations to fault
    /// on); `VC_sd` piggy-backs one integrated diff per stale page.
    ViewGrant {
        /// Missed release records (`VC_d`: invalidations to fault on),
        /// shared with the home's release history.
        records: Vec<Arc<ViewRecord>>,
        /// Integrated diffs per stale page (`VC_sd`). A single missed
        /// release is shared as-is; multiple releases merge into one fresh
        /// integrated diff.
        diffs: Vec<(PageId, Arc<Diff>)>,
        /// The view's current version.
        version: u32,
        /// Home's happens-before scalar.
        lamport: u64,
    },
    /// Write release acknowledged; `version` is the release's assigned view
    /// version (the releaser is already up to date with its own write).
    ReleaseAck {
        /// Version assigned to the release (unchanged if nothing was dirty).
        version: u32,
    },
    /// The requested diffs, with their application-order keys.
    DiffResp {
        /// `(interval, lamport, diff)` triples, application-ordered by the
        /// requester. Diffs are shared with the serving node's diff store.
        items: Vec<(IntervalId, u64, Arc<Diff>)>,
    },
    /// Full page content (answers [`Req::PageReq`]); `None` when the
    /// server no longer holds a valid copy and the requester must fall
    /// back to per-interval diff fetches.
    PageResp {
        /// The page content, or `None` if the server's copy was invalid.
        content: Option<Box<PageBuf>>,
    },
}

impl Resp {
    /// Full wire size, including headers.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES
            + match self {
                Resp::Ack => 0,
                Resp::LockGrant { records, vt, .. } | Resp::BarrierRelease { records, vt, .. } => {
                    8 + vt.wire_bytes() + records.iter().map(|r| r.wire_bytes()).sum::<usize>()
                }
                Resp::ViewGrant { records, diffs, .. } => {
                    12 + records.iter().map(|r| r.wire_bytes()).sum::<usize>()
                        + diffs.iter().map(|(_, d)| d.wire_bytes()).sum::<usize>()
                }
                Resp::ReleaseAck { .. } => 4,
                Resp::DiffResp { items } => items
                    .iter()
                    .map(|(_, _, d)| 16 + d.wire_bytes())
                    .sum::<usize>(),
                Resp::PageResp { content } => {
                    4 + content.as_ref().map_or(0, |_| crate::PAGE_SIZE_WIRE)
                }
            }
    }
}

/// Wire size of a batch of write notices (used in sanity checks).
pub fn notices_wire_bytes(n: usize) -> usize {
    n * NOTICE_WIRE_BYTES
}

/// Mailbox tag of the one-sided grant data the home writes into an
/// acquirer's preposted buffer under `VC_rdma`. Bit 62 keeps the RDMA tag
/// space disjoint from RPC reply tags (bit 63).
pub fn rdma_grant_tag(view: ViewId) -> u64 {
    (1 << 62) | view as u64
}

/// Mailbox tag of the one-sided release-diff data a writer deposits at the
/// view home under `VC_rdma` (bit 40 separates it from grant data).
pub fn rdma_release_tag(view: ViewId) -> u64 {
    (1 << 62) | (1 << 40) | view as u64
}

/// Wire size of a one-sided diff deposit (`VC_rdma`): one RDMA write
/// carrying each page's id and diff, plus the transport header.
pub fn one_sided_diffs_wire_bytes(diffs: &[(PageId, Arc<Diff>)]) -> usize {
    HEADER_BYTES + diffs.iter().map(|(_, d)| 4 + d.wire_bytes()).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vopp_page::PageBuf;

    #[test]
    fn sizes_are_header_plus_payload() {
        let vt = VTime::zero(16);
        assert_eq!(
            Req::LockAcquire {
                lock: 3,
                vt: vt.clone()
            }
            .wire_bytes(),
            HEADER_BYTES + 4 + 64
        );
        assert_eq!(Resp::Ack.wire_bytes(), HEADER_BYTES);
        assert_eq!(
            Req::ViewAcquire {
                view: 1,
                mode: AccessMode::Read,
                have: 0
            }
            .wire_bytes(),
            HEADER_BYTES + 9
        );
    }

    #[test]
    fn diff_payloads_counted() {
        let mut p = PageBuf::zeroed();
        p.set_word(0, 1);
        let d = Diff::create(&PageBuf::zeroed(), &p);
        let grant = Resp::ViewGrant {
            records: vec![],
            diffs: vec![(0, Arc::new(d.clone()))],
            version: 1,
            lamport: 1,
        };
        assert_eq!(grant.wire_bytes(), HEADER_BYTES + 12 + d.wire_bytes());
        let rel = Req::ViewRelease {
            view: 0,
            mode: AccessMode::Write,
            interval: None,
            lamport: 0,
            pages: vec![0, 1],
            diffs: vec![(0, Arc::new(d.clone()))],
        };
        assert_eq!(rel.wire_bytes(), HEADER_BYTES + 21 + 8 + d.wire_bytes());
    }

    #[test]
    fn view_record_size_scales() {
        let r = ViewRecord {
            version: 1,
            id: IntervalId { owner: 0, seq: 1 },
            lamport: 1,
            pages: vec![1, 2, 3],
        };
        assert_eq!(r.wire_bytes(), 32);
    }
}
