//! The per-node programming interface.
//!
//! [`DsmCtx`] is what application code sees: shared-memory accessors, the
//! traditional lock/barrier API (LRC programs) and the VOPP view primitives
//! (`acquire_view` / `release_view` / `acquire_rview` / `release_rview` /
//! `merge_views`, paper §2).
//!
//! Under the VC protocols the context *enforces* the VOPP discipline at run
//! time: shared memory may only be read inside a held (read or write) view
//! and written inside the held write view, write views do not nest, and a
//! release must only have dirtied pages of the released view. Violations
//! panic with a diagnostic — programming errors, not recoverable states.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use vopp_metrics::Phase;
use vopp_page::{
    offset_in_page, page_of, pages_spanned, Addr, IntervalId, PageId, PageState, VTime, PAGE_SIZE,
};
use vopp_racecheck::{DisciplineRule, Mode as RcMode, RaceChecker, Violation};
use vopp_sim::sync::Mutex;
use vopp_sim::{AppCtx, EventKind, ProcId, SimDuration, SimTime};
use vopp_simnet::RpcClient;
use vopp_trace::{CausalProfiler, OpKind, OpSpan};

use crate::cost::{CostModel, CpuDebt};
use crate::layout::{Layout, ViewId};
use crate::msg::{AccessMode, Req, Resp};
use crate::node::{NodeState, Protocol};

/// The application-side handle to one DSM node.
pub struct DsmCtx<'a> {
    sim: AppCtx<'a>,
    node: Arc<Mutex<NodeState>>,
    rpc: RefCell<RpcClient>,
    debt: CpuDebt,
    cost: CostModel,
    layout: Arc<Layout>,
    protocol: Protocol,
    next_barrier: Cell<u32>,
    barrier_timeout: SimDuration,
    auto_views: Cell<bool>,
    rc: Option<Arc<RaceChecker>>,
    /// Causal profiler of this run, cached off the kernel so the hot paths
    /// pay one pointer test. When set, every flush and blocking wait also
    /// records an [`OpSpan`] annotation for critical-path blame.
    causal: Option<Arc<CausalProfiler>>,
}

impl<'a> DsmCtx<'a> {
    pub(crate) fn new(
        sim: AppCtx<'a>,
        node: Arc<Mutex<NodeState>>,
        barrier_timeout: SimDuration,
        rexmit_timeout: SimDuration,
        rc: Option<Arc<RaceChecker>>,
    ) -> DsmCtx<'a> {
        let (cost, layout, protocol) = {
            let n = node.lock();
            (n.cost.clone(), n.layout.clone(), n.protocol)
        };
        let causal = sim.causal_profiler();
        DsmCtx {
            sim,
            node,
            rpc: RefCell::new(RpcClient::with_timeout(rexmit_timeout)),
            debt: CpuDebt::new(),
            cost,
            layout,
            protocol,
            next_barrier: Cell::new(0),
            barrier_timeout,
            auto_views: Cell::new(false),
            rc,
            causal,
        }
    }

    /// This processor's id.
    pub fn me(&self) -> ProcId {
        self.sim.me()
    }

    /// Cluster size.
    pub fn nprocs(&self) -> usize {
        self.sim.nprocs()
    }

    /// Which DSM implementation this run uses.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The shared-memory layout (views, allocations).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Current virtual time (flushes accumulated CPU debt first).
    pub fn now(&self) -> SimTime {
        self.flush();
        self.sim.now()
    }

    /// Whether an enabled tracer is installed on this run. Gate any work
    /// done purely to build an event (string formatting, collection) on
    /// this so disabled runs pay nothing.
    pub fn tracing(&self) -> bool {
        self.sim.tracing()
    }

    /// Record a structured trace event at this node's current virtual time.
    /// A no-op (one pointer test) unless a tracer is installed and enabled.
    pub fn trace(&self, kind: EventKind) {
        self.sim.trace(kind);
    }

    /// Park this node until `until`; a no-op when that time has passed.
    /// This is open-loop pacing (interarrival gaps, crash downtime), not
    /// protocol waiting: the span is charged to [`Phase::Idle`], which the
    /// kernel counts as CPU time — the node is runnable, just pacing
    /// itself — so the accounting invariants still close. Returns the
    /// nanoseconds idled.
    pub fn idle_until(&self, until: SimTime) -> u64 {
        self.flush();
        let now = self.sim.now();
        if until <= now {
            return 0;
        }
        let d = until - now;
        self.sim.sleep(d);
        let ns = d.nanos();
        self.node
            .lock()
            .stats
            .metrics
            .breakdown
            .charge(Phase::Idle, ns);
        if let Some(prof) = &self.causal {
            prof.record_op(
                self.me(),
                OpSpan {
                    lo_ns: now.nanos(),
                    hi_ns: until.nanos(),
                    op: OpKind::Idle,
                    obj: 0,
                    app_ns: 0,
                    overhead_ns: 0,
                    diff_ns: 0,
                },
            );
        }
        ns
    }

    /// Simulate a crash and restart of this node's DSM engine: volatile
    /// state — page copies, pending invalidations, view-version knowledge —
    /// is lost; durable state — the node's interval log and diff store (its
    /// write-ahead log), the lamport clock, and any home/manager roles on
    /// this node — survives. Recovery is lazy: the next `acquire_view`
    /// reports version 0 and the home streams the full view history back,
    /// reconstructing shard contents page by page.
    ///
    /// Only legal between requests (no held views, no unextracted writes)
    /// and only modelled for the view protocols, whose homes keep the
    /// per-view history recovery replays. Returns the number of page
    /// buffers lost.
    pub fn crash_recover(&self) -> u64 {
        assert!(
            self.protocol.is_vc(),
            "crash/recovery is modelled for the view protocols only"
        );
        self.flush();
        let dropped = self.node.lock().crash_volatile();
        self.trace(EventKind::NodeCrash { pages: dropped });
        dropped
    }

    // ---------------------------------------------------------------
    // CPU accounting
    // ---------------------------------------------------------------

    /// Charge `n` floating-point operations of compute.
    pub fn flops(&self, n: u64) {
        self.debt.add_ns(n as f64 * self.cost.ns_per_flop);
    }

    /// Charge `n` integer/index operations of compute.
    pub fn int_ops(&self, n: u64) {
        self.debt.add_ns(n as f64 * self.cost.ns_per_int);
    }

    /// Charge a local buffer copy of `n` bytes.
    pub fn copy_cost(&self, n: u64) {
        self.debt.add_ns(n as f64 * self.cost.ns_per_byte_copy);
    }

    /// Charge raw nanoseconds of compute.
    pub fn compute_ns(&self, ns: f64) {
        self.debt.add_ns(ns);
    }

    /// Flush accumulated CPU debt into the clock and attribute the advance:
    /// application work to [`Phase::Compute`], protocol charges to
    /// [`Phase::ProtoCpu`].
    fn flush(&self) {
        let f = self.debt.flush(&self.sim);
        if f.total_ns() != 0 {
            let bd = &mut self.node.lock().stats.metrics.breakdown;
            bd.charge(Phase::Compute, f.app_ns);
            bd.charge(Phase::ProtoCpu, f.overhead_ns);
            if let Some(prof) = &self.causal {
                // The flush advanced the clock by exactly total_ns, so the
                // annotation span matches the kernel's compute wake record.
                let hi_ns = self.sim.now().nanos();
                prof.record_op(
                    self.me(),
                    OpSpan {
                        lo_ns: hi_ns - f.total_ns(),
                        hi_ns,
                        op: OpKind::App,
                        obj: 0,
                        app_ns: f.app_ns,
                        overhead_ns: f.overhead_ns,
                        diff_ns: f.diff_ns,
                    },
                );
            }
        }
    }

    /// Attribute the virtual time elapsed since `since` (a blocked RPC wait)
    /// to `phase`, recording it in the matching latency histogram. Every
    /// blocking call in this file is bracketed by exactly one `charge_wait`,
    /// which is what makes the per-node breakdown sum to the node's clock.
    /// `obj` is the view/lock/page the wait was for (0 when global), used
    /// only by the critical-path blame annotation.
    fn charge_wait(&self, phase: Phase, obj: u64, since: SimTime) -> u64 {
        let now = self.sim.now();
        let waited = (now - since).nanos();
        let mut n = self.node.lock();
        let m = &mut n.stats.metrics;
        m.breakdown.charge(phase, waited);
        match phase {
            Phase::AcquireWait => m.acquire_rtt.record(waited),
            Phase::BarrierWait => m.barrier_rtt.record(waited),
            Phase::DataWait => m.diff_rtt.record(waited),
            _ => {}
        }
        drop(n);
        if let Some(prof) = &self.causal {
            let op = match phase {
                Phase::BarrierWait => OpKind::Barrier,
                Phase::AcquireWait => OpKind::Acquire,
                Phase::DataWait => OpKind::Data,
                Phase::SendWait => OpKind::Flush,
                _ => OpKind::Other,
            };
            prof.record_op(
                self.me(),
                OpSpan {
                    lo_ns: since.nanos(),
                    hi_ns: now.nanos(),
                    op,
                    obj,
                    app_ns: 0,
                    overhead_ns: 0,
                    diff_ns: 0,
                },
            );
        }
        waited
    }

    /// Close the current write interval. Under HLRC the diffs are flushed
    /// eagerly to their pages' home nodes (and acknowledged) *before* any
    /// synchronization message is sent — the flush-before-sync invariant
    /// that keeps home copies current when invalidated readers fetch them.
    fn close_interval(&self) -> usize {
        let diffs = {
            let mut n = self.node.lock();
            let (_, diffs) = n.end_interval_with_diffs();
            diffs
        };
        let ndiffs = diffs.len();
        if self.protocol == Protocol::Hlrc && !diffs.is_empty() {
            let np = self.nprocs();
            let me = self.me();
            let mut groups: std::collections::BTreeMap<ProcId, Vec<_>> =
                std::collections::BTreeMap::new();
            for (p, d) in diffs {
                groups.entry(p % np).or_default().push((p, d));
            }
            // The home's own pages are already current locally.
            groups.remove(&me);
            if !groups.is_empty() {
                if ndiffs > 0 {
                    self.debt
                        .add_overhead_diff(self.cost.diff_create * ndiffs as u64);
                }
                self.flush();
                let calls: Vec<(ProcId, usize, Req)> = groups
                    .into_iter()
                    .map(|(home, items)| {
                        let req = Req::HomeFlush { items };
                        let bytes = req.wire_bytes();
                        (home, bytes, req)
                    })
                    .collect();
                let t_rpc = self.sim.now();
                let replies = self.rpc.borrow_mut().call_all(&self.sim, &calls);
                self.charge_wait(Phase::SendWait, 0, t_rpc);
                for pkt in replies {
                    assert!(matches!(pkt.expect::<Resp>(), Resp::Ack));
                }
                return 0; // diff-creation cost already charged
            }
        }
        ndiffs
    }

    // ---------------------------------------------------------------
    // Synchronization: barrier
    // ---------------------------------------------------------------

    /// Global barrier. Under LRC this also performs (centralized)
    /// consistency maintenance; under VC it only synchronizes (paper §3.2).
    pub fn barrier(&self) {
        self.flush();
        let t0 = self.sim.now();
        let episode = self.next_barrier.get();
        self.next_barrier.set(episode + 1);
        if let Some(rc) = self.rc_hb() {
            // Contribute this node's clock before the arrive message: the
            // home releases everyone only after all arrives, so every
            // node's enter is ordered before any node's exit.
            rc.barrier_enter(self.me(), episode);
        }
        let (records, vt) = if self.protocol.is_lrc_family() {
            let ndiffs = self.close_interval();
            if ndiffs > 0 {
                self.debt
                    .add_overhead_diff(self.cost.diff_create * ndiffs as u64);
                self.flush();
            }
            let mut n = self.node.lock();
            (n.delta_for_home(0), n.logged_vt.clone())
        } else {
            // Undisciplined writes (already reported by the checker) are
            // reverted here so they can never leak past a barrier.
            self.rc_discard_undisciplined();
            let n = self.node.lock();
            assert!(
                n.mem.dirty_pages().is_empty(),
                "proc {}: barrier with unreleased view modifications",
                n.me
            );
            (Vec::new(), VTime::zero(0))
        };
        self.trace(EventKind::BarrierEnter {
            id: 0,
            epoch: episode as u64,
        });
        let req = Req::BarrierArrive {
            episode,
            records,
            vt,
        };
        let bytes = req.wire_bytes();
        let t_rpc = self.sim.now();
        let resp = self
            .rpc
            .borrow_mut()
            .call_with_timeout(&self.sim, 0, bytes, req, self.barrier_timeout)
            .expect::<Resp>();
        self.charge_wait(Phase::BarrierWait, 0, t_rpc);
        match resp {
            Resp::BarrierRelease {
                records,
                vt,
                lamport,
            } => {
                let notices = records.len() as u64;
                let fresh = self.fresh_lrc_notices(&records);
                {
                    let mut n = self.node.lock();
                    if self.protocol.is_lrc_family() {
                        n.absorb_lrc_grant(&records, &vt, lamport);
                        let lv = vt.clone();
                        n.note_home_knows(0, &lv);
                    } else {
                        n.lamport_sync(lamport);
                    }
                    n.stats.barriers += 1;
                    n.stats.barrier_wait_ns += (self.sim.now() - t0).nanos();
                }
                self.emit_notices(fresh, 0);
                self.trace(EventKind::BarrierExit {
                    id: 0,
                    epoch: episode as u64,
                    notices,
                });
                if let Some(rc) = self.rc_hb() {
                    rc.barrier_exit(self.me(), episode);
                }
            }
            other => panic!("barrier got unexpected reply {other:?}"),
        }
    }

    /// The subset of grant `records` this node has not yet logged, as
    /// `(owner, seq, pages)` triples for [`EventKind::WriteNoticeApply`]
    /// events. Empty when tracing is off. Filtering against the pre-merge
    /// log keeps each `(scope, owner)` notice series strictly increasing
    /// even when a duplicate grant re-sends known records.
    fn fresh_lrc_notices(
        &self,
        records: &[Arc<vopp_page::IntervalRecord>],
    ) -> Vec<(ProcId, u64, u64)> {
        if !self.tracing() || records.is_empty() {
            return Vec::new();
        }
        let n = self.node.lock();
        records
            .iter()
            .filter(|r| r.id.seq > n.logged_vt.get(r.id.owner))
            .map(|r| (r.id.owner, r.id.seq as u64, r.pages.len() as u64))
            .collect()
    }

    /// Emit one [`EventKind::WriteNoticeApply`] per freshly absorbed record.
    fn emit_notices(&self, fresh: Vec<(ProcId, u64, u64)>, scope: u64) {
        for (owner, seq, pages) in fresh {
            self.trace(EventKind::WriteNoticeApply {
                owner,
                seq,
                scope,
                pages,
            });
        }
    }

    // ---------------------------------------------------------------
    // Synchronization: traditional locks (LRC programs)
    // ---------------------------------------------------------------

    /// Acquire lock `lock` (traditional API; LRC/HLRC/ScC).
    ///
    /// Under Scope Consistency the grant enforces only the updates made
    /// under this lock's scope (paper §4); under the LRC family it enforces
    /// everything the grantor knows.
    pub fn lock_acquire(&self, lock: u32) {
        assert!(
            self.protocol.is_lrc_family(),
            "locks belong to the traditional API; VOPP programs use views"
        );
        if self.protocol == Protocol::ScC {
            return self.scc_lock_acquire(lock);
        }
        self.flush();
        let t0 = self.sim.now();
        self.trace(EventKind::LockAcquireStart { lock: lock as u64 });
        let ndiffs = self.close_interval();
        if ndiffs > 0 {
            self.debt
                .add_overhead_diff(self.cost.diff_create * ndiffs as u64);
            self.flush();
        }
        let (home, vt) = {
            let n = self.node.lock();
            (n.lock_home(lock), n.logged_vt.clone())
        };
        let req = Req::LockAcquire { lock, vt };
        let bytes = req.wire_bytes();
        let t_rpc = self.sim.now();
        let resp = self
            .rpc
            .borrow_mut()
            .call(&self.sim, home, bytes, req)
            .expect::<Resp>();
        self.charge_wait(Phase::AcquireWait, lock as u64, t_rpc);
        match resp {
            Resp::LockGrant {
                records,
                vt,
                lamport,
            } => {
                let fresh = self.fresh_lrc_notices(&records);
                {
                    let mut n = self.node.lock();
                    n.absorb_lrc_grant(&records, &vt, lamport);
                    let lv = vt.clone();
                    n.note_home_knows(home, &lv);
                    n.stats.acquires += 1;
                    n.stats.acquire_wait_ns += (self.sim.now() - t0).nanos();
                }
                self.emit_notices(fresh, 0);
                self.trace(EventKind::LockAcquireEnd { lock: lock as u64 });
                if let Some(rc) = self.rc_hb() {
                    rc.lock_acquired(self.me(), lock);
                }
            }
            other => panic!("lock_acquire got unexpected reply {other:?}"),
        }
    }

    /// Release lock `lock`, pushing this node's new interval records to the
    /// lock home (LRC family) or publishing this scope's release record
    /// (ScC).
    pub fn lock_release(&self, lock: u32) {
        assert!(self.protocol.is_lrc_family());
        if self.protocol == Protocol::ScC {
            return self.scc_lock_release(lock);
        }
        self.flush();
        let ndiffs = self.close_interval();
        if ndiffs > 0 {
            self.debt
                .add_overhead_diff(self.cost.diff_create * ndiffs as u64);
            self.flush();
        }
        if let Some(rc) = self.rc_hb() {
            // Publish this node's ordering before the release message: the
            // home may grant the lock to a remote acquirer while this
            // thread is still blocked on the Ack.
            rc.lock_released(self.me(), lock);
        }
        let (home, records) = {
            let mut n = self.node.lock();
            let home = n.lock_home(lock);
            (home, n.delta_for_home(home))
        };
        let req = Req::LockRelease { lock, records };
        let bytes = req.wire_bytes();
        let t_rpc = self.sim.now();
        let resp = self
            .rpc
            .borrow_mut()
            .call(&self.sim, home, bytes, req)
            .expect::<Resp>();
        self.charge_wait(Phase::SendWait, lock as u64, t_rpc);
        assert!(matches!(resp, Resp::Ack), "lock_release expects Ack");
        self.trace(EventKind::LockRelease { lock: lock as u64 });
    }

    // ---------------------------------------------------------------
    // Synchronization: Scope Consistency locks (related work, paper §4)
    // ---------------------------------------------------------------

    /// ScC acquire: the lock home sends the release records of *this scope*
    /// newer than what this node has enforced; their pages are invalidated
    /// and fetched on fault, exactly like a `VC_d` view grant — but the
    /// scope's page set is dynamic (whatever its releases dirtied).
    fn scc_lock_acquire(&self, lock: u32) {
        self.flush();
        let t0 = self.sim.now();
        self.trace(EventKind::LockAcquireStart { lock: lock as u64 });
        let ndiffs = self.close_interval();
        if ndiffs > 0 {
            self.debt
                .add_overhead_diff(self.cost.diff_create * ndiffs as u64);
            self.flush();
        }
        let (home, have) = {
            let n = self.node.lock();
            (
                n.lock_home(lock),
                n.lock_applied.get(&lock).copied().unwrap_or(0),
            )
        };
        let req = Req::ViewAcquire {
            view: lock,
            mode: AccessMode::Write,
            have,
        };
        let bytes = req.wire_bytes();
        let t_rpc = self.sim.now();
        let resp = self
            .rpc
            .borrow_mut()
            .call(&self.sim, home, bytes, req)
            .expect::<Resp>();
        self.charge_wait(Phase::AcquireWait, lock as u64, t_rpc);
        match resp {
            Resp::ViewGrant {
                records,
                version,
                lamport,
                ..
            } => {
                let fresh: Vec<(ProcId, u64, u64)> = if self.tracing() {
                    let n = self.node.lock();
                    records
                        .iter()
                        .filter(|r| r.id.owner != n.me && !n.scoped_applied.contains(&r.id))
                        .map(|r| (r.id.owner, r.id.seq as u64, r.pages.len() as u64))
                        .collect()
                } else {
                    Vec::new()
                };
                {
                    let mut n = self.node.lock();
                    n.scc_absorb(&records, lamport);
                    let la = n.lock_applied.entry(lock).or_insert(0);
                    *la = (*la).max(version);
                    n.stats.acquires += 1;
                    n.stats.acquire_wait_ns += (self.sim.now() - t0).nanos();
                }
                self.emit_notices(fresh, lock as u64 + 1);
                self.trace(EventKind::LockAcquireEnd { lock: lock as u64 });
                if let Some(rc) = self.rc_hb() {
                    rc.lock_acquired(self.me(), lock);
                }
            }
            other => panic!("scc lock_acquire got unexpected reply {other:?}"),
        }
    }

    /// ScC release: close the interval (also logging it for the global
    /// barrier merge) and publish its record under this lock's scope.
    fn scc_lock_release(&self, lock: u32) {
        self.flush();
        if let Some(rc) = self.rc_hb() {
            // As in `lock_release`: publish ordering before the message.
            rc.lock_released(self.me(), lock);
        }
        let (home, interval, lamport, pages, ndiffs) = {
            let mut n = self.node.lock();
            let (rec, ndiffs) = n.end_interval();
            let home = n.lock_home(lock);
            match rec {
                Some(r) => {
                    // This node's own release is already enforced locally.
                    n.scoped_applied.insert(r.id);
                    (home, Some(r.id), r.lamport, r.pages.clone(), ndiffs)
                }
                None => (home, None, n.lamport, Vec::new(), 0),
            }
        };
        if ndiffs > 0 {
            self.debt
                .add_overhead_diff(self.cost.diff_create * ndiffs as u64);
            self.flush();
        }
        let req = Req::ViewRelease {
            view: lock,
            mode: AccessMode::Write,
            interval,
            lamport,
            pages,
            diffs: Vec::new(),
        };
        let bytes = req.wire_bytes();
        let t_rpc = self.sim.now();
        let resp = self
            .rpc
            .borrow_mut()
            .call(&self.sim, home, bytes, req)
            .expect::<Resp>();
        self.charge_wait(Phase::SendWait, lock as u64, t_rpc);
        match resp {
            Resp::ReleaseAck { version } => {
                let mut n = self.node.lock();
                let la = n.lock_applied.entry(lock).or_insert(0);
                *la = (*la).max(version);
            }
            other => panic!("scc lock_release got unexpected reply {other:?}"),
        }
        self.trace(EventKind::LockRelease { lock: lock as u64 });
    }

    // ---------------------------------------------------------------
    // Synchronization: VOPP view primitives
    // ---------------------------------------------------------------

    /// `acquire_view` (paper §2): gain exclusive access to view `v` and make
    /// its content consistent. Not nestable.
    pub fn acquire_view(&self, v: ViewId) {
        self.acquire_view_mode(v, AccessMode::Write);
    }

    /// `acquire_Rview` (paper §2, §3.4): gain shared read access. Nestable;
    /// concurrent readers are granted simultaneously.
    pub fn acquire_rview(&self, v: ViewId) {
        // Nested re-acquisition of an already-held read view is local.
        {
            let mut n = self.node.lock();
            if let Some(c) = n.held_read.get_mut(&v) {
                *c += 1;
                return;
            }
        }
        self.acquire_view_mode(v, AccessMode::Read);
    }

    fn acquire_view_mode(&self, v: ViewId, mode: AccessMode) {
        assert!(
            self.protocol.is_vc(),
            "views require a VC protocol; traditional programs use locks/barriers"
        );
        self.flush();
        let t0 = self.sim.now();
        self.trace(EventKind::AcquireStart {
            view: v as u64,
            write: mode == AccessMode::Write,
        });
        let (home, have) = {
            let n = self.node.lock();
            if mode == AccessMode::Write {
                assert!(
                    n.held_write.is_none(),
                    "proc {}: acquire_view({v}) while holding view {:?} — \
                     acquire_view cannot be nested (paper §2)",
                    n.me,
                    n.held_write
                );
            }
            assert!(
                !(mode == AccessMode::Write && n.held_read.contains_key(&v)),
                "proc {}: acquire_view({v}) while holding it as a read view",
                n.me
            );
            (n.view_home(v), n.view_applied[v as usize])
        };
        if self.protocol == Protocol::VcRdma {
            // Drop stale one-sided grant data left from a previous tenure
            // of this view (a duplicate grant whose data landed after we
            // moved on). Link FIFO guarantees any such straggler has landed
            // by now: the release ack that ended the previous tenure
            // travelled the same home→here link behind it.
            let stale = crate::msg::rdma_grant_tag(v);
            self.sim.purge_filter(|p| {
                p.class == vopp_sim::DeliveryClass::OneSided && p.src == home && p.tag == stale
            });
        }
        let req = Req::ViewAcquire {
            view: v,
            mode,
            have,
        };
        let bytes = req.wire_bytes();
        // `t0` already marks the rpc start: nothing between it and the call
        // advances the clock.
        let resp = self
            .rpc
            .borrow_mut()
            .call(&self.sim, home, bytes, req)
            .expect::<Resp>();
        self.charge_wait(Phase::AcquireWait, v as u64, t0);
        match resp {
            Resp::ViewGrant {
                records,
                diffs,
                version,
                lamport,
            } => {
                let diffs = if self.protocol == Protocol::VcRdma {
                    debug_assert!(diffs.is_empty(), "VC_rdma grants carry no inline diffs");
                    let tag = crate::msg::rdma_grant_tag(v);
                    // The home wrote the view data one-sided ahead of this
                    // reply, so FIFO has landed it already; an empty poll
                    // therefore means the home had nothing to send, not
                    // that the data is still in flight.
                    let polled = match self.sim.poll_one_sided(home, tag) {
                        Some(pkt) => pkt.expect::<Vec<(PageId, Arc<vopp_page::Diff>)>>(),
                        None => Vec::new(),
                    };
                    // A retransmitted acquire can leave a byte-identical
                    // duplicate deposit behind the one we just consumed.
                    self.sim.purge_filter(|p| {
                        p.class == vopp_sim::DeliveryClass::OneSided
                            && p.src == home
                            && p.tag == tag
                    });
                    polled
                } else {
                    diffs
                };
                let napplied = diffs.len();
                let grant_bytes: u64 = diffs
                    .iter()
                    .map(|(_, d)| d.wire_bytes() as u64)
                    .sum::<u64>()
                    + records.iter().map(|r| r.wire_bytes() as u64).sum::<u64>();
                let fresh: Vec<(ProcId, u64, u64)> = if self.tracing() {
                    records
                        .iter()
                        .map(|r| (r.id.owner, r.id.seq as u64, r.pages.len() as u64))
                        .collect()
                } else {
                    Vec::new()
                };
                let mut n = self.node.lock();
                n.vc_absorb_grant(v, &records, &diffs, version, lamport);
                match mode {
                    AccessMode::Write => n.held_write = Some(v),
                    AccessMode::Read => {
                        n.held_read.insert(v, 1);
                    }
                }
                n.stats.acquires += 1;
                let waited = (self.sim.now() - t0).nanos();
                n.stats.acquire_wait_ns += waited;
                let vs = n.stats.views.entry(v).or_default();
                vs.acquires += 1;
                vs.wait_ns += waited;
                vs.grant_bytes += grant_bytes;
                drop(n);
                // VC_rdma: the data arrived by one-sided write into the
                // preposted buffer — nothing for the acquirer's CPU to
                // apply, so no diff-apply charge. The other VC protocols
                // pay software diff application per stale page.
                if napplied > 0 && self.protocol != Protocol::VcRdma {
                    self.debt
                        .add_overhead_diff(self.cost.diff_apply * napplied as u64);
                }
                self.emit_notices(fresh, v as u64 + 1);
                if self.tracing() {
                    for (p, d) in &diffs {
                        self.trace(EventKind::DiffApply {
                            page: *p as u64,
                            bytes: d.wire_bytes() as u64,
                        });
                    }
                }
                self.trace(EventKind::AcquireEnd {
                    view: v as u64,
                    write: mode == AccessMode::Write,
                    version: version as u64,
                    bytes: grant_bytes,
                });
            }
            other => panic!("acquire_view got unexpected reply {other:?}"),
        }
    }

    /// `release_view` (paper §2): publish this view's modifications and give
    /// up exclusive access.
    pub fn release_view(&self, v: ViewId) {
        assert!(self.protocol.is_vc());
        self.flush();
        let (home, interval, lamport, pages, diffs, ndiffs) = {
            let mut n = self.node.lock();
            assert_eq!(
                n.held_write,
                Some(v),
                "proc {}: release_view({v}) without holding it",
                n.me
            );
            // VOPP discipline: everything dirtied belongs to the view. With
            // a checker attached the violation was already reported at
            // access time; revert foreign writes instead of panicking so
            // only the view's own modifications are published.
            let view_pages = self.layout.view(v).pages.clone();
            if self.rc_discipline().is_some() {
                for p in n.mem.dirty_pages() {
                    if !view_pages.contains(&p) {
                        n.mem.discard_writes(p);
                    }
                }
            } else {
                for p in n.mem.dirty_pages() {
                    assert!(
                        view_pages.contains(&p),
                        "proc {}: modified page {p} (view {:?}) while holding view {v} — \
                         VOPP programs modify only the acquired view (paper §2)",
                        n.me,
                        self.layout.view_of_page(p)
                    );
                }
            }
            let (closed, ndiffs) = n.end_interval_vc();
            n.held_write = None;
            let home = n.view_home(v);
            match closed {
                Some((id, lamport, pages, diffs)) => {
                    // VC_sd ships the diffs inline with the release; VC_rdma
                    // deposits them at the home by one-sided write below.
                    let sd = if matches!(self.protocol, Protocol::VcSd | Protocol::VcRdma) {
                        diffs
                    } else {
                        Vec::new()
                    };
                    (home, Some(id), lamport, pages, sd, ndiffs)
                }
                None => (home, None, n.lamport, Vec::new(), Vec::new(), 0),
            }
        };
        if ndiffs > 0 {
            self.debt
                .add_overhead_diff(self.cost.diff_create * ndiffs as u64);
            self.flush();
        }
        let diffs = if self.protocol == Protocol::VcRdma {
            if !diffs.is_empty() {
                // One-sided deposit ahead of the (slim) release request:
                // link FIFO lands the data before the control message, and
                // only the control message is ever retransmitted, so the
                // home's take on first processing cannot miss.
                let wire = crate::msg::one_sided_diffs_wire_bytes(&diffs);
                self.sim.send(
                    home,
                    wire,
                    vopp_sim::DeliveryClass::OneSided,
                    crate::msg::rdma_release_tag(v),
                    Arc::new(diffs),
                );
            }
            Vec::new()
        } else {
            diffs
        };
        let req = Req::ViewRelease {
            view: v,
            mode: AccessMode::Write,
            interval,
            lamport,
            pages,
            diffs,
        };
        let bytes = req.wire_bytes();
        let t_rpc = self.sim.now();
        let resp = self
            .rpc
            .borrow_mut()
            .call(&self.sim, home, bytes, req)
            .expect::<Resp>();
        self.charge_wait(Phase::SendWait, v as u64, t_rpc);
        match resp {
            Resp::ReleaseAck { version } => {
                let mut n = self.node.lock();
                let bumped = version > n.view_applied[v as usize];
                let va = &mut n.view_applied[v as usize];
                *va = (*va).max(version);
                if bumped {
                    n.stats.views.entry(v).or_default().versions += 1;
                }
            }
            other => panic!("release_view got unexpected reply {other:?}"),
        }
        self.trace(EventKind::ReleaseDone {
            view: v as u64,
            write: true,
        });
    }

    /// `release_Rview` (paper §2).
    pub fn release_rview(&self, v: ViewId) {
        assert!(self.protocol.is_vc());
        {
            let mut n = self.node.lock();
            let c = n
                .held_read
                .get_mut(&v)
                .unwrap_or_else(|| panic!("release_rview({v}) without holding it"));
            *c -= 1;
            if *c > 0 {
                return; // nested release: local
            }
            n.held_read.remove(&v);
        }
        // Writes made while only this read view was held were reported as
        // violations; revert them before the protocol closes any interval.
        self.rc_discard_undisciplined();
        self.flush();
        let (home, lamport) = {
            let n = self.node.lock();
            (n.view_home(v), n.lamport)
        };
        let req = Req::ViewRelease {
            view: v,
            mode: AccessMode::Read,
            interval: None,
            lamport,
            pages: Vec::new(),
            diffs: Vec::new(),
        };
        let bytes = req.wire_bytes();
        let t_rpc = self.sim.now();
        let resp = self
            .rpc
            .borrow_mut()
            .call(&self.sim, home, bytes, req)
            .expect::<Resp>();
        self.charge_wait(Phase::SendWait, v as u64, t_rpc);
        assert!(matches!(resp, Resp::Ack));
        self.trace(EventKind::ReleaseDone {
            view: v as u64,
            write: false,
        });
    }

    /// `merge_views` (paper §3.5): bring every view up to date on this node.
    /// Expensive but convenient; implemented as a read acquisition of each
    /// view not currently held.
    pub fn merge_views(&self) {
        assert!(self.protocol.is_vc());
        for v in 0..self.layout.nviews() as ViewId {
            let held = {
                let n = self.node.lock();
                n.held_write == Some(v) || n.held_read.contains_key(&v)
            };
            if !held {
                self.acquire_rview(v);
                self.release_rview(v);
            }
        }
    }

    // ---------------------------------------------------------------
    // Automated view insertion (paper §6 future work)
    // ---------------------------------------------------------------

    /// Enable or disable *automated view-primitive insertion*: the paper's
    /// §6 future work ("the insertion of view primitives can be automated
    /// by compiling techniques"), realized at run time. While enabled, a
    /// shared-memory access whose view is not currently held automatically
    /// acquires it (read view for reads, exclusive view for writes) for
    /// exactly that access and releases it afterwards.
    ///
    /// This is correct but naive: each unbracketed access pays a full
    /// acquire/release round trip, which is exactly why the paper argues
    /// for programmer-placed (or cleverly compiler-batched) primitives —
    /// see the `ablation_auto_views` benchmark.
    pub fn set_auto_views(&self, on: bool) {
        assert!(
            self.protocol.is_vc() || !on,
            "auto views require a VC protocol"
        );
        self.auto_views.set(on);
    }

    /// If auto mode is on and the span's view is not held, acquire it;
    /// returns what must be released after the access. The span must lie
    /// within one view (a compiler would split larger statements).
    fn auto_acquire(&self, addr: Addr, len: usize, write: bool) -> Option<(ViewId, AccessMode)> {
        if !self.auto_views.get() || !self.protocol.is_vc() || len == 0 {
            return None;
        }
        let mut views = pages_spanned(addr, len).map(|p| self.layout.view_of_page(p));
        let v = views
            .next()
            .flatten()
            .expect("auto views: access outside any view");
        assert!(
            views.all(|o| o == Some(v)),
            "auto views: one access must stay within one view"
        );
        let (held_w, held_r) = {
            let n = self.node.lock();
            (n.held_write == Some(v), n.held_read.contains_key(&v))
        };
        if write {
            if held_w {
                None
            } else {
                assert!(
                    !held_r,
                    "auto views: write access to view {v} held read-only"
                );
                self.acquire_view(v);
                Some((v, AccessMode::Write))
            }
        } else if held_w || held_r {
            None
        } else {
            self.acquire_rview(v);
            Some((v, AccessMode::Read))
        }
    }

    fn auto_release(&self, held: Option<(ViewId, AccessMode)>) {
        match held {
            Some((v, AccessMode::Write)) => self.release_view(v),
            Some((v, AccessMode::Read)) => self.release_rview(v),
            None => {}
        }
    }

    // ---------------------------------------------------------------
    // Dynamic correctness checking (vopp-racecheck)
    // ---------------------------------------------------------------

    /// The attached happens-before checker, if any.
    fn rc_hb(&self) -> Option<&RaceChecker> {
        match &self.rc {
            Some(rc) if rc.mode() == RcMode::HappensBefore => Some(rc),
            _ => None,
        }
    }

    /// The attached view-discipline checker, if any. While one is attached,
    /// VOPP discipline violations are reported instead of panicking.
    fn rc_discipline(&self) -> Option<&RaceChecker> {
        match &self.rc {
            Some(rc) if rc.mode() == RcMode::ViewDiscipline => Some(rc),
            _ => None,
        }
    }

    /// Record one shared access with the attached checker (a single pointer
    /// test when none is attached) and emit a trace event per fresh
    /// violation. Pure observation: never advances virtual time, so runs
    /// with the checker off are byte-identical to runs without it.
    fn rc_access(&self, addr: Addr, len: usize, write: bool) {
        let Some(rc) = &self.rc else { return };
        if len == 0 {
            return;
        }
        match rc.mode() {
            RcMode::HappensBefore => {
                let me = self.me();
                for v in rc.access(me, addr, len, write) {
                    if let Violation::DataRace {
                        page,
                        first,
                        second,
                    } = v
                    {
                        let (mine, other) = if second.node == me {
                            (second, first)
                        } else {
                            (first, second)
                        };
                        self.trace(EventKind::RaceDetected {
                            page: page as u64,
                            other: other.node,
                            start: mine.start as u64,
                            end: mine.end as u64,
                            write: mine.write,
                        });
                    }
                }
            }
            RcMode::ViewDiscipline => self.rc_check_discipline(rc, addr, len, write),
        }
    }

    /// Classify one access against the VOPP discipline and report every
    /// violated page range — the relaxed, reporting replacement for the
    /// panicking [`DsmCtx::vopp_check`].
    fn rc_check_discipline(&self, rc: &RaceChecker, addr: Addr, len: usize, write: bool) {
        let me = self.me();
        let (held_w, held_r): (Option<ViewId>, Vec<ViewId>) = {
            let n = self.node.lock();
            (n.held_write, n.held_read.keys().copied().collect())
        };
        for p in pages_spanned(addr, len) {
            let ps = p * PAGE_SIZE;
            let start = addr.max(ps);
            let end = (addr + len).min(ps + PAGE_SIZE);
            let (rule, view) = match self.layout.view_of_page(p) {
                None => (DisciplineRule::OutsideViews, None),
                Some(v) => {
                    if held_w == Some(v) || (!write && held_r.contains(&v)) {
                        continue; // disciplined access
                    }
                    let rule = if write && held_r.contains(&v) {
                        DisciplineRule::ReadOnlyWrite
                    } else if held_w.is_none() && held_r.is_empty() {
                        DisciplineRule::Unbracketed
                    } else {
                        DisciplineRule::ForeignView
                    };
                    (rule, Some(v))
                }
            };
            if rc.record_discipline(rule, me, view, p, start, end, write) && self.tracing() {
                self.trace(EventKind::DisciplineViolation {
                    rule: rule.label().to_string(),
                    page: p as u64,
                    start: start as u64,
                    end: end as u64,
                    write,
                });
            }
        }
    }

    /// With a discipline checker attached, undisciplined writes are reported
    /// rather than rejected; revert any dirty page that does not belong to
    /// the currently-held write view so the protocol machinery (interval
    /// closing, grant invalidation) never observes them.
    fn rc_discard_undisciplined(&self) {
        if self.rc_discipline().is_none() {
            return;
        }
        let mut n = self.node.lock();
        let keep = n.held_write.map(|v| self.layout.view(v).pages.clone());
        for p in n.mem.dirty_pages() {
            let legit = keep.as_ref().is_some_and(|pages| pages.contains(&p));
            if !legit {
                n.mem.discard_writes(p);
            }
        }
    }

    // ---------------------------------------------------------------
    // Shared memory access
    // ---------------------------------------------------------------

    fn vopp_check(&self, n: &NodeState, p: PageId, write: bool) {
        if !self.protocol.is_vc() || self.rc_discipline().is_some() {
            return;
        }
        let v = self.layout.view_of_page(p).unwrap_or_else(|| {
            panic!(
                "proc {}: access to shared page {p} outside any view — \
                 VOPP programs put all shared data in views",
                n.me
            )
        });
        let ok = if write {
            n.held_write == Some(v)
        } else {
            n.held_write == Some(v) || n.held_read.contains_key(&v)
        };
        assert!(
            ok,
            "proc {}: {} page {p} of view {v} without {} it (held_write={:?}) — \
             view primitives must bracket every access (paper §2)",
            n.me,
            if write { "write to" } else { "read of" },
            if write {
                "acquire_view-ing"
            } else {
                "acquiring"
            },
            n.held_write
        );
    }

    /// Resolve a fault on `p`: fetch the missing diffs from their writers
    /// (in parallel, grouped per writer) and apply them in happens-before
    /// order. The invalidate-protocol hot path of LRC_d and VC_d.
    fn fault(&self, p: PageId, write: bool) {
        self.debt.add_overhead(self.cost.page_fault);
        self.flush();
        self.trace(EventKind::PageFault {
            page: p as u64,
            write,
        });
        let fetches = {
            let mut n = self.node.lock();
            n.stats.page_faults += 1;
            n.take_pending(p)
        };
        if fetches.is_empty() {
            // Invalid page with no recorded writer: nothing to fetch.
            self.node.lock().mem.validate(p);
            return;
        }
        // Whole-page fetch (TreadMarks' "get whole page" escape hatch):
        // when the accumulated per-interval diffs would exceed one page
        // transfer, ask a node whose copy is known complete instead.
        //   * View pages (VC): writes are serialized, so the most recent
        //     writer's copy is provably complete while we hold the view.
        //   * LRC pages whose *entire write history* has a single owner:
        //     that owner's current copy equals the diff-reconstructed
        //     content. The pending list alone is not enough — on a
        //     false-shared page the one pending writer's copy can miss
        //     other writers' updates this node already applied, silently
        //     regressing their words — so the hatch additionally consults
        //     the page's full writer-history bitmask.
        let distinct_owners = {
            let mut o: Vec<_> = fetches.iter().map(|f| f.id.owner).collect();
            o.sort_unstable();
            o.dedup();
            o.len()
        };
        let is_view_page = self.layout.view_of_page(p).is_some();
        // HLRC always fetches the current page from its home (one round
        // trip; the home is kept current by eager flushes).
        if self.protocol == Protocol::Hlrc {
            let home = p % self.nprocs();
            let req = Req::PageReq { page: p };
            let bytes = req.wire_bytes();
            {
                let mut n = self.node.lock();
                n.stats.diff_requests += 1;
            }
            self.trace(EventKind::DiffRequest {
                page: p as u64,
                to: home,
            });
            let t_rpc = self.sim.now();
            let pkt = self.rpc.borrow_mut().call(&self.sim, home, bytes, req);
            self.charge_wait(Phase::DataWait, p as u64, t_rpc);
            match pkt.expect::<Resp>() {
                Resp::PageResp {
                    content: Some(content),
                } => {
                    let mut n = self.node.lock();
                    n.mem.install_page(p, &content);
                    n.mem.release_page(content);
                    n.mem.validate(p);
                    n.stats.diffs_applied += 1;
                    self.debt.add_overhead_diff(self.cost.diff_apply);
                    drop(n);
                    self.trace(EventKind::DiffApply {
                        page: p as u64,
                        bytes: PAGE_SIZE as u64,
                    });
                    return;
                }
                other => panic!("HLRC home fetch got unexpected reply {other:?}"),
            }
        }
        // The most recent writer can be this node itself after a crash (its
        // own releases come back in the `have == 0` recovery grant); a
        // node's post-crash copy is exactly what was lost, so the escape
        // hatch must fetch from a peer — fall through to diff fetches,
        // which loopback to the durable local diff store where needed.
        let last_owner_is_me = fetches.last().is_some_and(|f| f.id.owner == self.me());
        let whole_page = !last_owner_is_me
            && ((self.protocol.is_vc() && is_view_page && distinct_owners >= 3)
                || (self.protocol == Protocol::LrcD
                    && distinct_owners == 1
                    && fetches.len() >= 4
                    && self.node.lock().page_sole_writer(p, fetches[0].id.owner)));
        if whole_page {
            let last = fetches.last().unwrap();
            let req = Req::PageReq { page: p };
            let bytes = req.wire_bytes();
            {
                let mut n = self.node.lock();
                n.stats.diff_requests += 1;
            }
            self.trace(EventKind::DiffRequest {
                page: p as u64,
                to: last.id.owner,
            });
            let t_rpc = self.sim.now();
            let pkt = self
                .rpc
                .borrow_mut()
                .call(&self.sim, last.id.owner, bytes, req);
            self.charge_wait(Phase::DataWait, p as u64, t_rpc);
            match pkt.expect::<Resp>() {
                Resp::PageResp {
                    content: Some(content),
                } => {
                    let mut n = self.node.lock();
                    n.mem.install_page(p, &content);
                    n.mem.release_page(content);
                    n.mem.validate(p);
                    n.stats.diffs_applied += 1;
                    self.debt.add_overhead_diff(self.cost.diff_apply);
                    drop(n);
                    self.trace(EventKind::DiffApply {
                        page: p as u64,
                        bytes: PAGE_SIZE as u64,
                    });
                    return;
                }
                Resp::PageResp { content: None } => {
                    // LRC homes drop copies under memory pressure; under
                    // crash faults even a view page's last writer may have
                    // lost its copy. Diffs live in the durable store, so
                    // fall through to per-interval diff fetches either way.
                }
                other => panic!("PageReq got unexpected reply {other:?}"),
            }
        }
        // Group per writer, preserving order.
        let mut per_owner: Vec<(ProcId, Vec<IntervalId>)> = Vec::new();
        for f in &fetches {
            match per_owner.iter_mut().find(|(o, _)| *o == f.id.owner) {
                Some((_, ids)) => ids.push(f.id),
                None => per_owner.push((f.id.owner, vec![f.id])),
            }
        }
        let calls: Vec<(ProcId, usize, Req)> = per_owner
            .into_iter()
            .map(|(owner, intervals)| {
                let req = Req::DiffReq { page: p, intervals };
                let bytes = req.wire_bytes();
                (owner, bytes, req)
            })
            .collect();
        {
            let mut n = self.node.lock();
            n.stats.diff_requests += calls.len() as u64;
        }
        if self.tracing() {
            for (owner, _, _) in &calls {
                self.trace(EventKind::DiffRequest {
                    page: p as u64,
                    to: *owner,
                });
            }
        }
        let t_rpc = self.sim.now();
        let replies = self.rpc.borrow_mut().call_all(&self.sim, &calls);
        self.charge_wait(Phase::DataWait, p as u64, t_rpc);
        let mut items = Vec::new();
        for pkt in replies {
            match pkt.expect::<Resp>() {
                Resp::DiffResp { items: it } => items.extend(it),
                other => panic!("DiffReq got unexpected reply {other:?}"),
            }
        }
        items.sort_by_key(|(id, lam, _)| (*lam, id.owner, id.seq));
        let mut n = self.node.lock();
        for (_, _, diff) in &items {
            n.mem.apply_diff(p, diff.as_ref());
            n.stats.diffs_applied += 1;
        }
        n.mem.validate(p);
        drop(n);
        if self.tracing() {
            for (_, _, diff) in &items {
                self.trace(EventKind::DiffApply {
                    page: p as u64,
                    bytes: diff.wire_bytes() as u64,
                });
            }
        }
        self.debt
            .add_overhead_diff(self.cost.diff_apply * items.len() as u64);
    }

    fn ensure_readable(&self, p: PageId) {
        loop {
            let n = self.node.lock();
            self.vopp_check(&n, p, false);
            match n.mem.state(p) {
                PageState::Valid | PageState::Dirty => return,
                PageState::Invalid => {
                    drop(n);
                    self.fault(p, false);
                }
            }
        }
    }

    fn ensure_writable(&self, p: PageId) {
        loop {
            let mut n = self.node.lock();
            self.vopp_check(&n, p, true);
            match n.mem.state(p) {
                PageState::Dirty => return,
                PageState::Valid => {
                    n.mem.note_write(p);
                    let me = n.me;
                    n.note_page_writer(p, me);
                    n.stats.twins += 1;
                    self.debt.add_overhead(self.cost.twin);
                    return;
                }
                PageState::Invalid => {
                    drop(n);
                    self.fault(p, true);
                }
            }
        }
    }

    /// Read `out.len()` bytes of shared memory starting at `addr`.
    pub fn read_bytes(&self, addr: Addr, out: &mut [u8]) {
        let auto = self.auto_acquire(addr, out.len(), false);
        self.rc_access(addr, out.len(), false);
        self.copy_cost(out.len() as u64);
        let mut i = 0;
        while i < out.len() {
            let a = addr + i;
            let p = page_of(a);
            let off = offset_in_page(a);
            let chunk = (PAGE_SIZE - off).min(out.len() - i);
            self.ensure_readable(p);
            let n = self.node.lock();
            out[i..i + chunk].copy_from_slice(&n.mem.page(p)[off..off + chunk]);
            i += chunk;
        }
        self.auto_release(auto);
    }

    /// Write `data` into shared memory at `addr`.
    pub fn write_bytes(&self, addr: Addr, data: &[u8]) {
        let auto = self.auto_acquire(addr, data.len(), true);
        self.rc_access(addr, data.len(), true);
        self.copy_cost(data.len() as u64);
        let mut i = 0;
        while i < data.len() {
            let a = addr + i;
            let p = page_of(a);
            let off = offset_in_page(a);
            let chunk = (PAGE_SIZE - off).min(data.len() - i);
            self.ensure_writable(p);
            let mut n = self.node.lock();
            n.mem.page_mut(p)[off..off + chunk].copy_from_slice(&data[i..i + chunk]);
            i += chunk;
        }
        self.auto_release(auto);
    }

    /// Read one `u32` (4-aligned).
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let auto = self.auto_acquire(addr, 4, false);
        self.rc_access(addr, 4, false);
        debug_assert_eq!(addr % 4, 0);
        self.copy_cost(4);
        let p = page_of(addr);
        self.ensure_readable(p);
        let r = {
            let n = self.node.lock();
            n.mem.page(p).word(offset_in_page(addr) / 4)
        };
        self.auto_release(auto);
        r
    }

    /// Write one `u32` (4-aligned).
    pub fn write_u32(&self, addr: Addr, v: u32) {
        let auto = self.auto_acquire(addr, 4, true);
        self.rc_access(addr, 4, true);
        debug_assert_eq!(addr % 4, 0);
        self.copy_cost(4);
        let p = page_of(addr);
        self.ensure_writable(p);
        {
            let mut n = self.node.lock();
            n.mem.page_mut(p).set_word(offset_in_page(addr) / 4, v);
        }
        self.auto_release(auto);
    }

    /// Read-modify-write one `u32` in place.
    pub fn update_u32(&self, addr: Addr, f: impl FnOnce(u32) -> u32) {
        let auto = self.auto_acquire(addr, 4, true);
        self.rc_access(addr, 4, true);
        debug_assert_eq!(addr % 4, 0);
        self.copy_cost(8);
        let p = page_of(addr);
        self.ensure_writable(p);
        {
            let mut n = self.node.lock();
            let w = offset_in_page(addr) / 4;
            let old = n.mem.page(p).word(w);
            n.mem.page_mut(p).set_word(w, f(old));
        }
        self.auto_release(auto);
    }

    /// Read one `f64` (8-aligned).
    pub fn read_f64(&self, addr: Addr) -> f64 {
        let auto = self.auto_acquire(addr, 8, false);
        self.rc_access(addr, 8, false);
        debug_assert_eq!(addr % 8, 0);
        self.copy_cost(8);
        let p = page_of(addr);
        self.ensure_readable(p);
        let r = {
            let n = self.node.lock();
            let off = offset_in_page(addr);
            f64::from_le_bytes(n.mem.page(p)[off..off + 8].try_into().unwrap())
        };
        self.auto_release(auto);
        r
    }

    /// Write one `f64` (8-aligned).
    pub fn write_f64(&self, addr: Addr, v: f64) {
        let auto = self.auto_acquire(addr, 8, true);
        self.rc_access(addr, 8, true);
        debug_assert_eq!(addr % 8, 0);
        self.copy_cost(8);
        let p = page_of(addr);
        self.ensure_writable(p);
        {
            let mut n = self.node.lock();
            let off = offset_in_page(addr);
            n.mem.page_mut(p)[off..off + 8].copy_from_slice(&v.to_le_bytes());
        }
        self.auto_release(auto);
    }

    /// Bulk read of `f64`s (8-aligned base).
    pub fn read_f64s(&self, addr: Addr, out: &mut [f64]) {
        let auto = self.auto_acquire(addr, out.len() * 8, false);
        self.rc_access(addr, out.len() * 8, false);
        debug_assert_eq!(addr % 8, 0);
        self.copy_cost(out.len() as u64 * 8);
        for p in pages_spanned(addr, out.len() * 8) {
            self.ensure_readable(p);
        }
        {
            let n = self.node.lock();
            for (i, o) in out.iter_mut().enumerate() {
                let a = addr + i * 8;
                let off = offset_in_page(a);
                *o = f64::from_le_bytes(n.mem.page(page_of(a))[off..off + 8].try_into().unwrap());
            }
        }
        self.auto_release(auto);
    }

    /// Bulk write of `f64`s (8-aligned base).
    pub fn write_f64s(&self, addr: Addr, data: &[f64]) {
        let auto = self.auto_acquire(addr, data.len() * 8, true);
        self.rc_access(addr, data.len() * 8, true);
        debug_assert_eq!(addr % 8, 0);
        self.copy_cost(data.len() as u64 * 8);
        for p in pages_spanned(addr, data.len() * 8) {
            self.ensure_writable(p);
        }
        {
            let mut n = self.node.lock();
            for (i, v) in data.iter().enumerate() {
                let a = addr + i * 8;
                let off = offset_in_page(a);
                n.mem.page_mut(page_of(a))[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        self.auto_release(auto);
    }

    /// Bulk read of `u32`s (4-aligned base).
    pub fn read_u32s(&self, addr: Addr, out: &mut [u32]) {
        let auto = self.auto_acquire(addr, out.len() * 4, false);
        self.rc_access(addr, out.len() * 4, false);
        debug_assert_eq!(addr % 4, 0);
        self.copy_cost(out.len() as u64 * 4);
        for p in pages_spanned(addr, out.len() * 4) {
            self.ensure_readable(p);
        }
        {
            let n = self.node.lock();
            for (i, o) in out.iter_mut().enumerate() {
                let a = addr + i * 4;
                *o = n.mem.page(page_of(a)).word(offset_in_page(a) / 4);
            }
        }
        self.auto_release(auto);
    }

    /// Bulk write of `u32`s (4-aligned base).
    pub fn write_u32s(&self, addr: Addr, data: &[u32]) {
        let auto = self.auto_acquire(addr, data.len() * 4, true);
        self.rc_access(addr, data.len() * 4, true);
        debug_assert_eq!(addr % 4, 0);
        self.copy_cost(data.len() as u64 * 4);
        for p in pages_spanned(addr, data.len() * 4) {
            self.ensure_writable(p);
        }
        {
            let mut n = self.node.lock();
            for (i, v) in data.iter().enumerate() {
                let a = addr + i * 4;
                n.mem
                    .page_mut(page_of(a))
                    .set_word(offset_in_page(a) / 4, *v);
            }
        }
        self.auto_release(auto);
    }

    /// Fold the transport's retransmission count and round-trip histogram
    /// into the node statistics and flush remaining CPU debt. Called by the
    /// runtime after the body.
    pub(crate) fn finish(&self) {
        self.flush();
        let rpc = self.rpc.borrow();
        let mut n = self.node.lock();
        n.stats.rexmits += rpc.rexmits;
        n.stats.metrics.rpc_rtt.absorb(&rpc.rtt);
    }
}
