//! Tests of the home-based LRC extension (HLRC_d): correctness of eager
//! home flushes, home-page freshness, and the homeless-vs-home-based
//! trade-off.

use vopp_dsm::{run_cluster, ClusterConfig, Layout, Protocol};

fn hlrc(n: usize) -> ClusterConfig {
    ClusterConfig::lossless(n, Protocol::Hlrc)
}

#[test]
fn lock_passes_value_through_home() {
    let mut l = Layout::new();
    let a = l.alloc(8, 8);
    let out = run_cluster(&hlrc(3), l.freeze(), move |ctx| {
        if ctx.me() == 0 {
            ctx.lock_acquire(0);
            ctx.write_u32(a, 41);
            ctx.write_u32(a + 4, 1);
            ctx.lock_release(0);
            ctx.barrier();
            0
        } else {
            ctx.barrier();
            ctx.lock_acquire(0);
            let v = ctx.read_u32(a) + ctx.read_u32(a + 4);
            ctx.lock_release(0);
            v
        }
    });
    assert_eq!(out.results[1], 42);
    assert_eq!(out.results[2], 42);
}

#[test]
fn barrier_phases_visible() {
    let mut l = Layout::new();
    let base = l.alloc(4 * 16, 4);
    let out = run_cluster(&hlrc(4), l.freeze(), move |ctx| {
        ctx.write_u32(base + 4 * ctx.me(), ctx.me() as u32 + 1);
        ctx.barrier();
        (0..4).map(|i| ctx.read_u32(base + 4 * i)).sum::<u32>()
    });
    assert_eq!(out.results, vec![10, 10, 10, 10]);
}

#[test]
fn false_sharing_multiple_writers_converge() {
    // Four writers on one page: flushes from all four merge at the home
    // (word-disjoint), and faulting readers fetch the merged page.
    let mut l = Layout::new();
    let base = l.alloc(4 * 4, 4);
    let out = run_cluster(&hlrc(4), l.freeze(), move |ctx| {
        ctx.write_u32(base + 4 * ctx.me(), 100 + ctx.me() as u32);
        ctx.barrier();
        (0..4)
            .map(|i| ctx.read_u32(base + 4 * i))
            .collect::<Vec<_>>()
    });
    for r in &out.results {
        assert_eq!(r, &vec![100, 101, 102, 103]);
    }
}

#[test]
fn repeated_overwrites_order_correctly() {
    let mut l = Layout::new();
    let a = l.alloc(4, 4);
    let out = run_cluster(&hlrc(2), l.freeze(), move |ctx| {
        for round in 0..5u32 {
            if ctx.me() == round as usize % 2 {
                ctx.write_u32(a, round + 1);
            }
            ctx.barrier();
            assert_eq!(ctx.read_u32(a), round + 1, "round {round}");
            ctx.barrier();
        }
        ctx.read_u32(a)
    });
    assert_eq!(out.results, vec![5, 5]);
}

#[test]
fn single_fetch_per_fault() {
    // Homeless LRC fetches per-writer diffs; HLRC fetches one page from
    // the home regardless of how many writers touched it.
    let writers = 6;
    let run = |proto: Protocol| {
        let mut l = Layout::new();
        let base = l.alloc(4 * writers, 4); // one page, many writers
        run_cluster(
            &ClusterConfig::lossless(writers + 1, proto),
            l.freeze(),
            move |ctx| {
                if ctx.me() < writers {
                    ctx.write_u32(base + 4 * ctx.me(), ctx.me() as u32);
                }
                ctx.barrier();
                if ctx.me() == writers {
                    // The reader faults once on the shared page.
                    (0..writers)
                        .map(|i| ctx.read_u32(base + 4 * i))
                        .sum::<u32>()
                } else {
                    0
                }
            },
        )
    };
    let homeless = run(Protocol::LrcD);
    let home = run(Protocol::Hlrc);
    assert_eq!(homeless.results[writers], home.results[writers]);
    // The reader's fault: 6 diff requests homeless vs 1 page fetch. (Other
    // procs' faults contribute too; compare totals.)
    assert!(
        home.stats.diff_requests() < homeless.stats.diff_requests(),
        "home-based: {} vs homeless: {}",
        home.stats.diff_requests(),
        homeless.stats.diff_requests()
    );
}

#[test]
fn eager_flush_costs_show_when_nobody_reads() {
    // A write-only workload: homeless LRC keeps diffs local (cheap),
    // HLRC flushes every interval to the homes (expensive) — the classic
    // trade-off between the two protocol families.
    let run = |proto: Protocol| {
        let mut l = Layout::new();
        let base = l.alloc(4096 * 4, 8); // 4 pages, disjoint per proc
        run_cluster(&ClusterConfig::lossless(4, proto), l.freeze(), move |ctx| {
            // Each proc owns the page homed at its *neighbour*, so every
            // HLRC interval must flush off-node.
            let mine = base + 4096 * ((ctx.me() + 1) % 4);
            for round in 0..10u32 {
                let vals = vec![round; 1024];
                ctx.write_u32s(mine, &vals);
                ctx.barrier();
            }
        })
    };
    let homeless = run(Protocol::LrcD);
    let home = run(Protocol::Hlrc);
    assert!(
        home.stats.data_mbytes() > 2.0 * homeless.stats.data_mbytes(),
        "eager flushes must dominate: {} vs {} MB",
        home.stats.data_mbytes(),
        homeless.stats.data_mbytes()
    );
}

#[test]
fn hlrc_deterministic_and_loss_tolerant() {
    let run = |seed: u64| {
        let mut l = Layout::new();
        let a = l.alloc(64, 4);
        let mut cfg = ClusterConfig::new(4, Protocol::Hlrc);
        cfg.net.base_drop_prob = 0.03;
        cfg.net.seed = seed;
        run_cluster(&cfg, l.freeze(), move |ctx| {
            for r in 0..8u32 {
                ctx.lock_acquire(0);
                ctx.update_u32(a, |x| x + r + ctx.me() as u32);
                ctx.lock_release(0);
            }
            ctx.barrier();
            ctx.lock_acquire(0);
            let v = ctx.read_u32(a);
            ctx.lock_release(0);
            v
        })
    };
    let x = run(11);
    let y = run(11);
    assert_eq!(x.results, y.results);
    assert_eq!(x.stats.num_msgs(), y.stats.num_msgs());
    // Commutative adds: value independent of the loss pattern too.
    let z = run(77);
    assert_eq!(x.results, z.results);
}
