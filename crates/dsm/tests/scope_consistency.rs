//! Tests of the Scope Consistency comparator (paper §4): scoped lock
//! grants, the defining stale-read behaviour, and the global merge at
//! barriers.

use vopp_dsm::{run_cluster, ClusterConfig, Layout, Protocol};

fn scc(n: usize) -> ClusterConfig {
    ClusterConfig::lossless(n, Protocol::ScC)
}

#[test]
fn same_scope_passes_values() {
    let mut l = Layout::new();
    let a = l.alloc(8, 8);
    let out = run_cluster(&scc(2), l.freeze(), move |ctx| {
        if ctx.me() == 0 {
            ctx.lock_acquire(1);
            ctx.write_u32(a, 41);
            ctx.write_u32(a + 4, 1);
            ctx.lock_release(1);
            ctx.barrier();
            0
        } else {
            ctx.barrier();
            ctx.lock_acquire(1);
            let v = ctx.read_u32(a) + ctx.read_u32(a + 4);
            ctx.lock_release(1);
            v
        }
    });
    assert_eq!(out.results[1], 42);
}

#[test]
fn different_scope_reads_stale_until_barrier() {
    // The semantic difference from LRC: updates made under lock 1 are NOT
    // enforced by acquiring lock 2 (paper §4) — only a barrier merges the
    // scopes globally. The signal travels through lock 2's own scope (a
    // flag variable), so no barrier intervenes before the stale read.
    let run = |proto: Protocol| {
        let mut l = Layout::new();
        let a = l.alloc(4, 4);
        let f = l.alloc(4096, 4); // flag on its own page, lock 2's scope
        run_cluster(&ClusterConfig::lossless(2, proto), l.freeze(), move |ctx| {
            if ctx.me() == 0 {
                ctx.lock_acquire(1);
                ctx.write_u32(a, 7);
                ctx.lock_release(1);
                ctx.lock_acquire(2);
                ctx.write_u32(f + 8, 1); // flag, inside lock 2's scope
                ctx.lock_release(2);
                ctx.barrier();
                ctx.barrier();
                (0, 0)
            } else {
                // Spin on the flag through lock 2.
                loop {
                    ctx.lock_acquire(2);
                    let flag = ctx.read_u32(f + 8);
                    ctx.lock_release(2);
                    if flag == 1 {
                        break;
                    }
                    ctx.compute_ns(200_000.0);
                }
                let through_other_scope = ctx.read_u32(a);
                ctx.barrier(); // global merge
                let after_barrier = ctx.read_u32(a);
                ctx.barrier();
                (through_other_scope, after_barrier)
            }
        })
    };
    // LRC's lock grants carry *all* knowledge: lock 2 also publishes the
    // lock-1 write.
    let lrc = run(Protocol::LrcD);
    assert_eq!(lrc.results[1], (7, 7));
    // ScC's scoped grant does not; only the barrier does.
    let scc = run(Protocol::ScC);
    assert_eq!(
        scc.results[1],
        (0, 7),
        "ScC must not propagate lock-1 updates through lock 2"
    );
}

#[test]
fn scoped_grants_are_smaller_than_lrc() {
    // Six processors each churn their own disjoint region under their own
    // lock, but all locks share one home node: LRC's grants broadcast the
    // transitive closure of everyone's records through that home, ScC's
    // grants carry only the (empty) scope history. The record metadata
    // difference is visible in total wire bytes.
    let np = 6;
    let run = |proto: Protocol| {
        let mut l = Layout::new();
        let base = l.alloc(4096 * np, 8);
        run_cluster(
            &ClusterConfig::lossless(np, proto),
            l.freeze(),
            move |ctx| {
                let me = ctx.me();
                let lock = (me as u32) * np as u32; // all locks home on node 0
                let mine = base + 4096 * me;
                for round in 0..20u32 {
                    ctx.lock_acquire(lock);
                    ctx.write_u32(mine, round + 1);
                    ctx.write_u32(mine + 2048, round + 2);
                    ctx.lock_release(lock);
                }
                ctx.barrier();
                ctx.read_u32(mine) + ctx.read_u32(mine + 2048)
            },
        )
    };
    let lrc = run(Protocol::LrcD);
    let scc = run(Protocol::ScC);
    assert_eq!(lrc.results, scc.results, "same final values");
    assert!(
        scc.stats.net.bytes < lrc.stats.net.bytes,
        "scoped grants must carry less metadata: ScC {} B vs LRC {} B",
        scc.stats.net.bytes,
        lrc.stats.net.bytes
    );
}

#[test]
fn barrier_merges_all_scopes() {
    let mut l = Layout::new();
    let base = l.alloc(4 * 4, 4);
    let out = run_cluster(&scc(4), l.freeze(), move |ctx| {
        // Each proc updates its slot under its own lock.
        ctx.lock_acquire(ctx.me() as u32 + 10);
        ctx.write_u32(base + 4 * ctx.me(), ctx.me() as u32 + 1);
        ctx.lock_release(ctx.me() as u32 + 10);
        ctx.barrier();
        // After the barrier every slot is visible without any lock.
        (0..4).map(|i| ctx.read_u32(base + 4 * i)).sum::<u32>()
    });
    assert_eq!(out.results, vec![10, 10, 10, 10]);
}

#[test]
fn repeated_scope_handoffs_accumulate() {
    let mut l = Layout::new();
    let a = l.alloc(4, 4);
    let out = run_cluster(&scc(4), l.freeze(), move |ctx| {
        for _ in 0..10 {
            ctx.lock_acquire(3);
            ctx.update_u32(a, |x| x + 1);
            ctx.lock_release(3);
        }
        ctx.barrier();
        ctx.lock_acquire(3);
        let v = ctx.read_u32(a);
        ctx.lock_release(3);
        v
    });
    assert!(out.results.iter().all(|&r| r == 40));
    assert!(out.stats.diff_requests() > 0, "scoped faults fetch diffs");
}

#[test]
fn scc_survives_loss_deterministically() {
    let run = |seed: u64| {
        let mut l = Layout::new();
        let a = l.alloc(16, 4);
        let mut cfg = ClusterConfig::new(3, Protocol::ScC);
        cfg.net.base_drop_prob = 0.03;
        cfg.net.seed = seed;
        run_cluster(&cfg, l.freeze(), move |ctx| {
            for r in 0..8u32 {
                ctx.lock_acquire(1);
                ctx.update_u32(a, |x| x + r + 1);
                ctx.lock_release(1);
            }
            ctx.barrier();
            ctx.read_u32(a)
        })
    };
    let x = run(3);
    assert_eq!(x.results, run(3).results);
    assert_eq!(x.results, run(9).results, "losses cannot change the sums");
    assert!(x.results.iter().all(|&v| v == 3 * 36));
}
