//! API misuse diagnostics: using the wrong primitive family for a protocol
//! must fail fast with a clear message.

use vopp_dsm::{run_cluster, ClusterConfig, Layout, Protocol};

#[test]
#[should_panic(expected = "views require a VC protocol")]
fn views_rejected_on_lrc() {
    let mut l = Layout::new();
    let (v, _) = l.add_view(8);
    run_cluster(
        &ClusterConfig::lossless(1, Protocol::LrcD),
        l.freeze(),
        move |ctx| {
            ctx.acquire_view(v);
        },
    );
}

#[test]
#[should_panic(expected = "locks belong to the traditional API")]
fn locks_rejected_on_vc() {
    let l = Layout::new();
    run_cluster(
        &ClusterConfig::lossless(1, Protocol::VcSd),
        l.freeze(),
        |ctx| {
            ctx.lock_acquire(0);
        },
    );
}

#[test]
#[should_panic(expected = "without holding it")]
fn release_unheld_view_rejected() {
    let mut l = Layout::new();
    let (v, _) = l.add_view(8);
    run_cluster(
        &ClusterConfig::lossless(1, Protocol::VcSd),
        l.freeze(),
        move |ctx| {
            ctx.release_view(v);
        },
    );
}

#[test]
#[should_panic(expected = "release_rview(0) without holding it")]
fn release_unheld_rview_rejected() {
    let mut l = Layout::new();
    let (v, _) = l.add_view(8);
    run_cluster(
        &ClusterConfig::lossless(1, Protocol::VcSd),
        l.freeze(),
        move |ctx| {
            ctx.release_rview(v);
        },
    );
}

#[test]
#[should_panic(expected = "holding it as a read view")]
fn write_upgrade_of_read_view_rejected() {
    let mut l = Layout::new();
    let (v, _) = l.add_view(8);
    run_cluster(
        &ClusterConfig::lossless(1, Protocol::VcSd),
        l.freeze(),
        move |ctx| {
            ctx.acquire_rview(v);
            ctx.acquire_view(v); // upgrade would deadlock at the home
        },
    );
}

#[test]
#[should_panic(expected = "without acquire_view-ing")]
fn cross_view_write_rejected_at_release() {
    // Writing pages of view B while holding view A is caught immediately
    // by the per-access discipline check.
    let mut l = Layout::new();
    let (va, _) = l.add_view(8);
    let (_vb, addr_b) = l.add_view(8);
    run_cluster(
        &ClusterConfig::lossless(1, Protocol::VcSd),
        l.freeze(),
        move |ctx| {
            ctx.acquire_view(va);
            ctx.write_u32(addr_b, 1); // page belongs to view B

            ctx.release_view(va);
        },
    );
}

#[test]
fn auto_views_off_by_default() {
    let mut l = Layout::new();
    let (_, addr) = l.add_view(8);
    let r = std::panic::catch_unwind(move || {
        run_cluster(
            &ClusterConfig::lossless(1, Protocol::VcSd),
            l.freeze(),
            move |ctx| {
                let _ = ctx.read_u32(addr);
            },
        )
    });
    assert!(
        r.is_err(),
        "unbracketed access must panic when auto mode is off"
    );
}

#[test]
#[should_panic(expected = "n > 0")]
fn zero_proc_cluster_rejected() {
    let l = Layout::new();
    run_cluster(
        &ClusterConfig::lossless(0, Protocol::VcSd),
        l.freeze(),
        |_| {},
    );
}
