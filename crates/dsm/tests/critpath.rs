//! End-to-end critical-path profiler tests on real cluster runs.
//!
//! These exercise the full stack — kernel causal recording, DSM op-span
//! annotation, and the backward-walk extraction (whose telescoping and
//! contiguity debug-asserts fire in test builds) — across every protocol,
//! and pin the standing invariant: profiling is pure observation, so every
//! statistic is identical with the profiler on or off.

use std::sync::Arc;

use vopp_dsm::{run_cluster, ClusterConfig, Layout, Protocol, RunStats};
use vopp_metrics::{OpKind, SegCat};
use vopp_sim::CausalProfiler;
use vopp_trace::json::Value;

const PROTOCOLS: [Protocol; 5] = [
    Protocol::LrcD,
    Protocol::Hlrc,
    Protocol::ScC,
    Protocol::VcD,
    Protocol::VcSd,
];

/// A small workload touching barriers, view/lock sync, and shared data.
fn small_run(protocol: Protocol, profiled: bool) -> (Vec<u32>, RunStats) {
    let mut layout = Layout::new();
    let (view, addr) = layout.add_view(4);
    let mut cfg = ClusterConfig::new(4, protocol);
    if profiled {
        cfg.profiler = Some(Arc::new(CausalProfiler::new(cfg.nprocs)));
    }
    let out = run_cluster(&cfg, layout.freeze(), move |ctx| {
        for _ in 0..3 {
            ctx.flops(5_000);
            if protocol.is_vc() {
                ctx.acquire_view(view);
                ctx.update_u32(addr, |x| x + 1);
                ctx.release_view(view);
            } else {
                ctx.lock_acquire(0);
                ctx.update_u32(addr, |x| x + 1);
                ctx.lock_release(0);
            }
            ctx.barrier();
        }
        if protocol.is_vc() {
            ctx.acquire_rview(view);
            let total = ctx.read_u32(addr);
            ctx.release_rview(view);
            total
        } else {
            ctx.read_u32(addr)
        }
    });
    (out.results, out.stats)
}

#[test]
fn path_telescopes_to_the_makespan_for_every_protocol() {
    for protocol in PROTOCOLS {
        let (results, stats) = small_run(protocol, true);
        assert_eq!(results, vec![12, 12, 12, 12], "{protocol:?}");
        let cp = stats.crit.as_ref().expect("profiler attached");
        assert_eq!(
            cp.makespan_ns,
            stats.time.nanos(),
            "{protocol:?}: path must cover the whole run"
        );
        assert!(!cp.segs.is_empty(), "{protocol:?}");
        // The extract() debug_asserts already checked telescoping; pin the
        // identity here too so release builds of this test still verify it.
        let total: u64 = cp.segs.iter().map(|s| s.len_ns()).sum();
        assert_eq!(total, cp.makespan_ns, "{protocol:?}");
        for w in cp.segs.windows(2) {
            assert_eq!(w[0].hi_ns, w[1].lo_ns, "{protocol:?}: gap in path");
        }
        // A sync-heavy run must show both CPU and network on the path.
        assert!(cp.cpu_ns() > 0, "{protocol:?}");
        assert!(cp.net_ns() > 0, "{protocol:?}");
        // Category identities close exactly.
        assert_eq!(
            cp.cpu_ns() + cp.net_ns() + cp.timeout_ns(),
            cp.makespan_ns,
            "{protocol:?}"
        );
        assert_eq!(
            cp.cpu_app_ns() + cp.cpu_overhead_ns() + cp.cpu_op_ns(OpKind::Idle),
            cp.cpu_ns(),
            "{protocol:?}: app + overhead + idle must cover path CPU time"
        );
        // Ceilings are sound: at least 1x, and the what-if times are
        // within the makespan.
        for x in [
            cp.whatif_net_free_ns(),
            cp.whatif_diff_free_ns(),
            cp.whatif_barrier_free_ns(),
        ] {
            assert!(x <= cp.makespan_ns, "{protocol:?}");
            assert!(cp.ceiling(x) >= 1.0, "{protocol:?}");
        }
    }
}

#[test]
fn profiler_never_perturbs_results_or_statistics() {
    for protocol in PROTOCOLS {
        let (r_off, s_off) = small_run(protocol, false);
        let (r_on, s_on) = small_run(protocol, true);
        assert_eq!(r_off, r_on, "{protocol:?}");
        assert!(s_off.crit.is_none());
        assert!(s_on.crit.is_some());
        // The full stable export surface must be byte-identical.
        assert_eq!(
            s_off.registry().to_value().to_json(),
            s_on.registry().to_value().to_json(),
            "{protocol:?}: profiling must be pure observation"
        );
        assert_eq!(s_off.time, s_on.time, "{protocol:?}");
        assert_eq!(s_off.node_end, s_on.node_end, "{protocol:?}");
        for (a, b) in s_off.node_breakdowns.iter().zip(&s_on.node_breakdowns) {
            assert_eq!(a, b, "{protocol:?}");
        }
    }
}

#[test]
fn network_segments_carry_protocol_blame() {
    let (_, stats) = small_run(Protocol::VcSd, true);
    let cp = stats.crit.as_ref().unwrap();
    // With 4 nodes meeting 3 barriers, barrier fan-in must appear on the
    // path, blamed on OpKind::Barrier at some waiting node.
    assert!(cp.wait_ns(OpKind::Barrier) > 0);
    // Every network segment carries an op other than a bare wait.
    let unblamed: u64 = cp
        .segs
        .iter()
        .filter(|s| s.cat == SegCat::Net && s.op == OpKind::Other)
        .map(|s| s.len_ns())
        .sum();
    assert_eq!(unblamed, 0, "all waits in this workload are annotated");
}

#[test]
fn chrome_export_is_valid_json_and_covers_the_path() {
    let (_, stats) = small_run(Protocol::VcD, true);
    let cp = stats.crit.as_ref().unwrap();
    let doc = vopp_metrics::critpath_to_chrome_json(cp);
    let v = Value::parse(&doc).expect("valid JSON");
    let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
    let slices = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .count();
    let nonzero = cp.segs.iter().filter(|s| s.len_ns() > 0).count();
    assert_eq!(slices, nonzero);
}
