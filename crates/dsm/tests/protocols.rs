//! End-to-end protocol tests: correctness of LRC_d, VC_d, VC_sd and
//! VC_rdma on a simulated cluster, plus runtime enforcement of the VOPP
//! discipline.

use std::sync::Arc;

use vopp_dsm::{run_cluster, ClusterConfig, Layout, Protocol};

fn lrc(n: usize) -> ClusterConfig {
    ClusterConfig::lossless(n, Protocol::LrcD)
}
fn vcd(n: usize) -> ClusterConfig {
    ClusterConfig::lossless(n, Protocol::VcD)
}
fn vcsd(n: usize) -> ClusterConfig {
    ClusterConfig::lossless(n, Protocol::VcSd)
}
fn vcrdma(n: usize) -> ClusterConfig {
    ClusterConfig::lossless(n, Protocol::VcRdma)
}

// ---------------------------------------------------------------------
// LRC_d (traditional lock/barrier programs)
// ---------------------------------------------------------------------

#[test]
fn lrc_lock_passes_value() {
    let mut l = Layout::new();
    let a = l.alloc(8, 8);
    let out = run_cluster(&lrc(2), l.freeze(), |ctx| {
        if ctx.me() == 0 {
            ctx.lock_acquire(0);
            ctx.write_u32(a, 41);
            ctx.write_u32(a + 4, 1);
            ctx.lock_release(0);
            ctx.barrier();
            0
        } else {
            ctx.barrier(); // ensure 0 released first
            ctx.lock_acquire(0);
            let v = ctx.read_u32(a) + ctx.read_u32(a + 4);
            ctx.lock_release(0);
            v
        }
    });
    assert_eq!(out.results[1], 42);
    assert!(
        out.stats.diff_requests() >= 1,
        "consumer must fault and fetch"
    );
}

#[test]
fn lrc_barrier_makes_writes_visible() {
    let mut l = Layout::new();
    let base = l.alloc(4 * 16, 4);
    let out = run_cluster(&lrc(4), l.freeze(), |ctx| {
        // Each proc writes its slot, then all read all slots.
        ctx.write_u32(base + 4 * ctx.me(), ctx.me() as u32 + 1);
        ctx.barrier();
        (0..4).map(|i| ctx.read_u32(base + 4 * i)).sum::<u32>()
    });
    assert_eq!(out.results, vec![10, 10, 10, 10]);
}

#[test]
fn lrc_false_sharing_multiple_writers_converge() {
    // All four procs write distinct words of the SAME page concurrently.
    let mut l = Layout::new();
    let base = l.alloc(4 * 4, 4);
    let out = run_cluster(&lrc(4), l.freeze(), |ctx| {
        ctx.write_u32(base + 4 * ctx.me(), 100 + ctx.me() as u32);
        ctx.barrier();
        (0..4)
            .map(|i| ctx.read_u32(base + 4 * i))
            .collect::<Vec<_>>()
    });
    for r in &out.results {
        assert_eq!(r, &vec![100, 101, 102, 103]);
    }
    // Every proc faulted and fetched diffs from the other three writers.
    assert!(out.stats.diff_requests() >= 4);
}

#[test]
fn lrc_lock_chain_transitive_visibility() {
    // 0 writes under lock; 1 reads+writes under lock; 2 must see both.
    let mut l = Layout::new();
    let a = l.alloc(16, 8);
    let out = run_cluster(&lrc(3), l.freeze(), |ctx| {
        match ctx.me() {
            0 => {
                ctx.lock_acquire(7);
                ctx.write_u32(a, 5);
                ctx.lock_release(7);
                ctx.barrier();
                ctx.barrier();
                0
            }
            1 => {
                ctx.barrier(); // after 0's release
                ctx.lock_acquire(7);
                let v = ctx.read_u32(a);
                ctx.write_u32(a + 4, v * 2);
                ctx.lock_release(7);
                ctx.barrier();
                v
            }
            _ => {
                ctx.barrier();
                ctx.barrier(); // after 1's release
                ctx.lock_acquire(7);
                let v = ctx.read_u32(a) + ctx.read_u32(a + 4);
                ctx.lock_release(7);
                v
            }
        }
    });
    assert_eq!(out.results, vec![0, 5, 15]);
}

#[test]
fn lrc_successive_intervals_ordered() {
    // Proc 0 overwrites the same word across two barrier phases; readers
    // must end with the latest value (diffs applied in lamport order).
    let mut l = Layout::new();
    let a = l.alloc(4, 4);
    let out = run_cluster(&lrc(2), l.freeze(), |ctx| {
        if ctx.me() == 0 {
            ctx.write_u32(a, 1);
            ctx.barrier();
            ctx.barrier();
            ctx.write_u32(a, 2);
            ctx.barrier();
            0
        } else {
            ctx.barrier();
            assert_eq!(ctx.read_u32(a), 1);
            ctx.barrier();
            ctx.barrier();
            ctx.read_u32(a)
        }
    });
    assert_eq!(out.results[1], 2);
}

// ---------------------------------------------------------------------
// VOPP on VC_d / VC_sd
// ---------------------------------------------------------------------

fn vopp_producer_consumer(cfg: &ClusterConfig) -> (u32, u64) {
    let mut l = Layout::new();
    let (v, addr) = l.add_view(64);
    let out = run_cluster(cfg, l.freeze(), move |ctx| {
        if ctx.me() == 0 {
            ctx.acquire_view(v);
            ctx.write_u32(addr, 10);
            ctx.write_u32(addr + 4, 32);
            ctx.release_view(v);
            ctx.barrier();
            0
        } else {
            ctx.barrier();
            ctx.acquire_view(v);
            let s = ctx.read_u32(addr) + ctx.read_u32(addr + 4);
            ctx.release_view(v);
            s
        }
    });
    (out.results[1], out.stats.diff_requests())
}

#[test]
fn vcd_view_passes_value_with_diff_requests() {
    let (v, dr) = vopp_producer_consumer(&vcd(2));
    assert_eq!(v, 42);
    assert!(
        dr >= 1,
        "VC_d is an invalidate protocol: faults fetch diffs"
    );
}

#[test]
fn vcsd_view_passes_value_without_diff_requests() {
    let (v, dr) = vopp_producer_consumer(&vcsd(2));
    assert_eq!(v, 42);
    assert_eq!(
        dr, 0,
        "VC_sd piggy-backs integrated diffs: zero diff requests"
    );
}

#[test]
fn vcrdma_view_passes_value_without_diff_requests() {
    let (v, dr) = vopp_producer_consumer(&vcrdma(2));
    assert_eq!(v, 42);
    assert_eq!(
        dr, 0,
        "VC_rdma writes view data one-sided: zero diff requests"
    );
}

#[test]
fn vc_exclusive_view_serializes_increments() {
    for cfg in [vcd(4), vcsd(4), vcrdma(4)] {
        let mut l = Layout::new();
        let (v, addr) = l.add_view(4);
        let out = run_cluster(&cfg, l.freeze(), move |ctx| {
            for _ in 0..10 {
                ctx.acquire_view(v);
                ctx.update_u32(addr, |x| x + 1);
                ctx.release_view(v);
            }
            ctx.barrier();
            ctx.acquire_rview(v);
            let got = ctx.read_u32(addr);
            ctx.release_rview(v);
            got
        });
        for r in &out.results {
            assert_eq!(*r, 40, "{}", cfg.protocol);
        }
    }
}

#[test]
fn vc_rviews_grant_concurrently() {
    let cfg = vcsd(8);
    let mut l = Layout::new();
    let (v, addr) = l.add_view(8);
    let out = run_cluster(&cfg, l.freeze(), move |ctx| {
        if ctx.me() == 0 {
            ctx.acquire_view(v);
            ctx.write_u32(addr, 9);
            ctx.release_view(v);
        }
        ctx.barrier();
        let t0 = ctx.now();
        ctx.acquire_rview(v);
        let val = ctx.read_u32(addr);
        // Hold the read view for 50ms: if reads serialized, total time
        // would exceed 8 * 50ms.
        ctx.compute_ns(50_000_000.0);
        ctx.release_rview(v);
        let held = ctx.now() - t0;
        (val, held.nanos())
    });
    for (val, _) in &out.results {
        assert_eq!(*val, 9);
    }
    // Concurrency check: the whole run fits well under the serial bound.
    assert!(
        out.stats.time.as_secs_f64() < 0.25,
        "read views must be granted concurrently, run took {}",
        out.stats.time
    );
}

#[test]
fn vc_write_waits_for_readers() {
    let cfg = vcsd(3);
    let mut l = Layout::new();
    let (v, addr) = l.add_view(8);
    let out = run_cluster(&cfg, l.freeze(), move |ctx| {
        match ctx.me() {
            0 => {
                // Writer: arrives while readers hold the view.
                ctx.barrier();
                ctx.compute_ns(5_000_000.0);
                ctx.acquire_view(v);
                let t = ctx.now();
                ctx.write_u32(addr, 1);
                ctx.release_view(v);
                t.nanos()
            }
            _ => {
                ctx.barrier();
                ctx.acquire_rview(v);
                ctx.compute_ns(40_000_000.0); // hold 40ms
                ctx.release_rview(v);
                ctx.now().nanos()
            }
        }
    });
    // The writer's acquire completed only after both readers released.
    assert!(out.results[0] >= 40_000_000);
}

#[test]
fn vcsd_integrated_diff_carries_latest_value() {
    // Two successive writers; a late reader must see the second value via
    // a single integrated diff.
    let cfg = vcsd(3);
    let mut l = Layout::new();
    let (v, addr) = l.add_view(8);
    let out = run_cluster(&cfg, l.freeze(), move |ctx| match ctx.me() {
        0 => {
            ctx.acquire_view(v);
            ctx.write_u32(addr, 1);
            ctx.write_u32(addr + 4, 7);
            ctx.release_view(v);
            ctx.barrier();
            ctx.barrier();
            0
        }
        1 => {
            ctx.barrier();
            ctx.acquire_view(v);
            ctx.update_u32(addr, |x| x + 10);
            ctx.release_view(v);
            ctx.barrier();
            0
        }
        _ => {
            ctx.barrier();
            ctx.barrier();
            ctx.acquire_rview(v);
            let a = ctx.read_u32(addr);
            let b = ctx.read_u32(addr + 4);
            ctx.release_rview(v);
            a + b
        }
    });
    assert_eq!(out.results[2], 18); // (1+10) + 7
    assert_eq!(out.stats.diff_requests(), 0);
}

#[test]
fn vc_barriers_carry_no_consistency() {
    // Under VC the barrier payload is constant-size: barrier time must not
    // grow with the amount of modified data.
    let mut l = Layout::new();
    let (v, addr) = l.add_view(64 * 1024);
    let cfg = vcsd(4);
    let out = run_cluster(&cfg, l.freeze(), move |ctx| {
        if ctx.me() == 0 {
            ctx.acquire_view(v);
            let big = vec![3u32; 16 * 1024];
            ctx.write_u32s(addr, &big);
            ctx.release_view(v);
        }
        ctx.barrier();
    });
    // 64 KB were released, yet the barrier crossing stays in the
    // microsecond range (2 small messages + manager turnaround).
    assert!(
        out.stats.barrier_time_usec() < 2_000.0,
        "VC barrier time was {}us",
        out.stats.barrier_time_usec()
    );
}

#[test]
fn merge_views_updates_everything_vcd() {
    merge_views_updates_everything_on(vcd(2));
}

#[test]
fn merge_views_updates_everything() {
    merge_views_updates_everything_on(vcsd(2));
}

fn merge_views_updates_everything_on(cfg: ClusterConfig) {
    let mut l = Layout::new();
    let views: Vec<_> = l.add_views(4, 16);
    let vs = Arc::new(views);
    let vs2 = vs.clone();
    let out = run_cluster(&cfg, l.freeze(), move |ctx| {
        if ctx.me() == 0 {
            for (i, (v, addr)) in vs2.iter().enumerate() {
                ctx.acquire_view(*v);
                ctx.write_u32(*addr, i as u32 + 1);
                ctx.release_view(*v);
            }
            ctx.barrier();
            0
        } else {
            ctx.barrier();
            ctx.merge_views();
            // After merge_views all views are up to date; read them
            // under read views per the access discipline.
            let mut sum = 0;
            for (v, addr) in vs2.iter() {
                ctx.acquire_rview(*v);
                sum += ctx.read_u32(*addr);
                ctx.release_rview(*v);
            }
            sum
        }
    });
    assert_eq!(out.results[1], 10);
}

// ---------------------------------------------------------------------
// VOPP discipline enforcement
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "cannot be nested")]
fn nested_acquire_view_rejected() {
    let mut l = Layout::new();
    let (v0, _) = l.add_view(8);
    let (v1, _) = l.add_view(8);
    run_cluster(&vcsd(1), l.freeze(), move |ctx| {
        ctx.acquire_view(v0);
        ctx.acquire_view(v1);
    });
}

#[test]
#[should_panic(expected = "without acquire_view-ing")]
fn write_without_view_rejected() {
    let mut l = Layout::new();
    let (_, addr) = l.add_view(8);
    run_cluster(&vcsd(1), l.freeze(), move |ctx| {
        ctx.write_u32(addr, 1);
    });
}

#[test]
#[should_panic(expected = "without acquiring")]
fn read_without_view_rejected() {
    let mut l = Layout::new();
    let (_, addr) = l.add_view(8);
    run_cluster(&vcsd(1), l.freeze(), move |ctx| {
        let _ = ctx.read_u32(addr);
    });
}

#[test]
#[should_panic(expected = "without acquire_view-ing")]
fn write_under_read_view_rejected() {
    let mut l = Layout::new();
    let (v, addr) = l.add_view(8);
    run_cluster(&vcsd(1), l.freeze(), move |ctx| {
        ctx.acquire_rview(v);
        ctx.write_u32(addr, 1);
        ctx.release_rview(v);
    });
}

#[test]
#[should_panic(expected = "outside any view")]
fn vopp_access_outside_views_rejected() {
    let mut l = Layout::new();
    let a = l.alloc(8, 8); // non-view shared memory
    let (_, _) = l.add_view(8);
    run_cluster(&vcsd(1), l.freeze(), move |ctx| {
        let _ = ctx.read_u32(a);
    });
}

#[test]
fn rview_nesting_is_local() {
    let mut l = Layout::new();
    let (v, addr) = l.add_view(8);
    let out = run_cluster(&vcsd(2), l.freeze(), move |ctx| {
        if ctx.me() == 0 {
            ctx.acquire_view(v);
            ctx.write_u32(addr, 5);
            ctx.release_view(v);
        }
        ctx.barrier();
        ctx.acquire_rview(v);
        ctx.acquire_rview(v); // nested
        let x = ctx.read_u32(addr);
        ctx.release_rview(v);
        let y = ctx.read_u32(addr); // still held
        ctx.release_rview(v);
        x + y
    });
    assert_eq!(out.results, vec![10, 10]);
    // Nested re-acquire sends no extra message: 1 write + 2 read acquires.
    assert_eq!(out.stats.acquires(), 3);
}

// ---------------------------------------------------------------------
// Cross-cutting properties
// ---------------------------------------------------------------------

#[test]
fn stats_rows_populated() {
    let mut l = Layout::new();
    let (v, addr) = l.add_view(8);
    let out = run_cluster(&vcsd(4), l.freeze(), move |ctx| {
        for _ in 0..5 {
            ctx.acquire_view(v);
            ctx.update_u32(addr, |x| x + 1);
            ctx.release_view(v);
            ctx.barrier();
        }
    });
    let s = &out.stats;
    assert_eq!(s.barriers(), 5);
    assert_eq!(s.acquires(), 20);
    assert_eq!(s.diff_requests(), 0);
    assert!(s.num_msgs() > 0);
    assert!(s.data_mbytes() > 0.0);
    assert!(s.barrier_time_usec() > 0.0);
    assert!(s.acquire_time_usec() > 0.0);
    assert!(s.time_secs() > 0.0);
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut l = Layout::new();
        let (v, addr) = l.add_view(256);
        let mut cfg = ClusterConfig::new(6, Protocol::VcSd);
        cfg.net.base_drop_prob = 0.01; // losses included in determinism
        run_cluster(&cfg, l.freeze(), move |ctx| {
            for i in 0..20u32 {
                ctx.acquire_view(v);
                ctx.update_u32(addr, |x| x.wrapping_add(i));
                ctx.release_view(v);
            }
            ctx.barrier();
            ctx.acquire_rview(v);
            let got = ctx.read_u32(addr);
            ctx.release_rview(v);
            got
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    assert_eq!(a.stats.time, b.stats.time);
    assert_eq!(a.stats.num_msgs(), b.stats.num_msgs());
    assert_eq!(a.stats.rexmits(), b.stats.rexmits());
}

#[test]
fn lossy_network_still_correct() {
    let mut l = Layout::new();
    let (v, addr) = l.add_view(16);
    for proto in [Protocol::VcD, Protocol::VcSd, Protocol::VcRdma] {
        let mut cfg = ClusterConfig::new(4, proto);
        cfg.net.base_drop_prob = 0.05; // harsh
        cfg.net.seed = 42;
        let out = run_cluster(&cfg, l.clone_for_test(), move |ctx| {
            for _ in 0..8 {
                ctx.acquire_view(v);
                ctx.update_u32(addr, |x| x + 1);
                ctx.release_view(v);
            }
            ctx.barrier();
            ctx.acquire_rview(v);
            let got = ctx.read_u32(addr);
            ctx.release_rview(v);
            got
        });
        for r in &out.results {
            assert_eq!(*r, 32, "{proto}");
        }
        assert!(
            out.stats.rexmits() > 0,
            "5% loss must cause retransmissions"
        );
    }
}

// ---------------------------------------------------------------------
// VC_rdma (one-sided transport)
// ---------------------------------------------------------------------

/// The modeled RDMA benefit: view data lands in the acquirer's preposted
/// buffer by one-sided write, so the acquirer pays no software diff
/// application. VC_sd charges `diff_apply` per stale page on the same
/// workload.
#[test]
fn vcrdma_skips_acquirer_diff_apply_cpu() {
    use vopp_metrics::Phase;
    let consumer_proto_cpu = |proto: Protocol| {
        let mut l = Layout::new();
        let (v, addr) = l.add_view(16 * 4096);
        let out = run_cluster(&ClusterConfig::lossless(2, proto), l.freeze(), move |ctx| {
            if ctx.me() == 0 {
                ctx.acquire_view(v);
                let big = vec![7u32; 16 * 1024]; // dirty all 16 pages
                ctx.write_u32s(addr, &big);
                ctx.release_view(v);
                ctx.barrier();
                0
            } else {
                ctx.barrier();
                ctx.acquire_rview(v);
                let got = ctx.read_u32(addr);
                ctx.release_rview(v);
                got
            }
        });
        assert_eq!(out.results[1], 7, "{proto}");
        assert_eq!(out.stats.diff_requests(), 0, "{proto}");
        out.stats.node_breakdowns[1].get(Phase::ProtoCpu)
    };
    let sd = consumer_proto_cpu(Protocol::VcSd);
    let rdma = consumer_proto_cpu(Protocol::VcRdma);
    // VC_sd applies 16 diffs at 15us each on the acquirer's CPU; VC_rdma
    // must not. Allow slack for the other protocol overheads both pay.
    assert!(
        sd >= rdma + 200_000,
        "VC_sd consumer proto CPU ({sd} ns) should exceed VC_rdma ({rdma} ns) by ~16 diff applications"
    );
}

/// VC_rdma on the RDMA-class generation: microsecond fabric, no losses,
/// no retransmissions, and a run dominated by CPU costs instead of wire
/// time.
#[test]
fn vcrdma_on_rdma_generation() {
    use vopp_simnet::NetGen;
    let mut l = Layout::new();
    let (v, addr) = l.add_view(16);
    let mut cfg = ClusterConfig::new(4, Protocol::VcRdma);
    cfg.net = NetGen::Rdma.config();
    let out = run_cluster(&cfg, l.freeze(), move |ctx| {
        for _ in 0..8 {
            ctx.acquire_view(v);
            ctx.update_u32(addr, |x| x + 1);
            ctx.release_view(v);
        }
        ctx.barrier();
        ctx.acquire_rview(v);
        let got = ctx.read_u32(addr);
        ctx.release_rview(v);
        got
    });
    for r in &out.results {
        assert_eq!(*r, 32);
    }
    assert_eq!(out.stats.rexmits(), 0, "RDMA-class profile is lossless");
    assert!(
        out.stats.time.as_secs_f64() < 0.05,
        "an RDMA fabric run must be CPU-bound, took {}",
        out.stats.time
    );
}

/// Regression for the hardcoded 1 s retransmission timeout: a loss on
/// 10 GbE recovers on that generation's 25 ms timescale. Under the old
/// fixed timeout any loss on the critical path cost at least a full
/// second.
#[test]
fn vcrdma_loss_on_10g_recovers_on_generation_timescale() {
    use vopp_simnet::NetGen;
    let mut l = Layout::new();
    let (v, addr) = l.add_view(16);
    let mut cfg = ClusterConfig::new(4, Protocol::VcRdma);
    cfg.net = NetGen::Eth10g.config();
    cfg.net.base_drop_prob = 0.05; // force losses
    cfg.net.seed = 7;
    let out = run_cluster(&cfg, l.freeze(), move |ctx| {
        for _ in 0..8 {
            ctx.acquire_view(v);
            ctx.update_u32(addr, |x| x + 1);
            ctx.release_view(v);
        }
        ctx.barrier();
        ctx.acquire_rview(v);
        let got = ctx.read_u32(addr);
        ctx.release_rview(v);
        got
    });
    for r in &out.results {
        assert_eq!(*r, 32);
    }
    assert!(out.stats.rexmits() >= 1, "5% loss must cause rexmits");
    assert!(
        out.stats.time.as_secs_f64() < 1.0,
        "rexmits must recover at the 25 ms generation timeout, took {}",
        out.stats.time
    );
}

/// Helper so the lossy test can reuse one layout for two runs.
trait CloneForTest {
    fn clone_for_test(&self) -> Arc<Layout>;
}
impl CloneForTest for Layout {
    fn clone_for_test(&self) -> Arc<Layout> {
        // Layouts are cheap to rebuild; reconstruct an identical one.
        let mut l = Layout::new();
        for v in self.views() {
            let _ = l.add_view(v.len);
        }
        l.freeze()
    }
}
