//! Failure-injection tests: the protocols must produce identical verified
//! results under arbitrary datagram loss, duplicate deliveries (from
//! retransmission) and manager-queue contention.

use vopp_dsm::{run_cluster, ClusterConfig, Layout, Protocol};

/// Sweep loss seeds and rates: results must never change, only timings and
/// retransmission counts. (The per-round updates commute, so the
/// timing-dependent acquisition order cannot affect the final value.)
#[test]
fn loss_sweep_preserves_results() {
    for proto in [Protocol::LrcD, Protocol::VcD, Protocol::VcSd] {
        let mut reference = None;
        for (rate, seed) in [(0.0, 1), (0.01, 2), (0.03, 3), (0.08, 4), (0.01, 99)] {
            let mut l = Layout::new();
            let (results, rexmits) = if proto == Protocol::LrcD {
                let addr = l.alloc(256, 4);
                let mut cfg = ClusterConfig::new(3, proto);
                cfg.net.base_drop_prob = rate;
                cfg.net.seed = seed;
                let out = run_cluster(&cfg, l.freeze(), move |ctx| {
                    for round in 0..6u32 {
                        ctx.lock_acquire(1);
                        ctx.update_u32(addr, |x| x + (ctx.me() as u32 + 1) * (round + 1));
                        ctx.lock_release(1);
                        ctx.barrier();
                    }
                    ctx.read_u32(addr)
                });
                (out.results, out.stats.rexmits())
            } else {
                let (v, addr) = l.add_view(16);
                let mut cfg = ClusterConfig::new(3, proto);
                cfg.net.base_drop_prob = rate;
                cfg.net.seed = seed;
                let out = run_cluster(&cfg, l.freeze(), move |ctx| {
                    for round in 0..6u32 {
                        ctx.acquire_view(v);
                        ctx.update_u32(addr, |x| x + (ctx.me() as u32 + 1) * (round + 1));
                        ctx.release_view(v);
                        ctx.barrier();
                    }
                    ctx.acquire_rview(v);
                    let got = ctx.read_u32(addr);
                    ctx.release_rview(v);
                    got
                });
                (out.results, out.stats.rexmits())
            };
            // All nodes converge on the same value...
            assert!(
                results.windows(2).all(|w| w[0] == w[1]),
                "{proto} rate={rate}"
            );
            // ...and the value is independent of the loss pattern.
            match &reference {
                None => reference = Some(results),
                Some(r) => assert_eq!(r, &results, "{proto} rate={rate} seed={seed}"),
            }
            if rate >= 0.05 {
                assert!(rexmits > 0, "{proto}: heavy loss must retransmit");
            }
        }
    }
}

/// View grants are FIFO: queued writers are served in request-arrival
/// order, so a long producer chain is starvation-free.
#[test]
fn view_queue_is_fifo_and_starvation_free() {
    let mut l = Layout::new();
    let (v, addr) = l.add_view(4 * 64);
    let np = 8;
    let out = run_cluster(
        &ClusterConfig::lossless(np, Protocol::VcSd),
        l.freeze(),
        move |ctx| {
            // Everyone stamps the next free slot with its id, 8 times. FIFO
            // grant order bounds how long anyone can wait.
            for _ in 0..8 {
                ctx.acquire_view(v);
                let n = ctx.read_u32(addr);
                ctx.write_u32(addr + 4 + 4 * n as usize, ctx.me() as u32);
                ctx.write_u32(addr, n + 1);
                ctx.release_view(v);
            }
            ctx.barrier();
            ctx.acquire_rview(v);
            let total = ctx.read_u32(addr);
            let mut counts = vec![0u32; np];
            for i in 0..total as usize {
                counts[ctx.read_u32(addr + 4 + 4 * i) as usize] += 1;
            }
            ctx.release_rview(v);
            (total, counts)
        },
    );
    for (total, counts) in &out.results {
        assert_eq!(*total, 64);
        // Every proc got exactly its 8 slots: nobody starved or duplicated.
        assert!(counts.iter().all(|&c| c == 8));
    }
}

/// Several locks with overlapping critical sections on LRC: total counts
/// must be exact under loss.
#[test]
fn multi_lock_contention_under_loss() {
    let mut l = Layout::new();
    let a = l.alloc(4, 4);
    let b = l.alloc(4, 4);
    let mut cfg = ClusterConfig::new(6, Protocol::LrcD);
    cfg.net.base_drop_prob = 0.02;
    let out = run_cluster(&cfg, l.freeze(), move |ctx| {
        for i in 0..10 {
            let lock = (ctx.me() + i) % 2;
            ctx.lock_acquire(lock as u32);
            let addr = if lock == 0 { a } else { b };
            ctx.update_u32(addr, |x| x + 1);
            ctx.lock_release(lock as u32);
        }
        ctx.barrier();
        ctx.lock_acquire(0);
        ctx.lock_release(0);
        ctx.lock_acquire(1);
        ctx.lock_release(1);
        (ctx.read_u32(a), ctx.read_u32(b))
    });
    for (va, vb) in &out.results {
        assert_eq!(va + vb, 60, "increments must never be lost or doubled");
    }
}

/// Barrier episodes survive loss of arrival and release messages (the
/// manager regenerates releases for retransmitted arrivals).
#[test]
fn barriers_survive_heavy_loss() {
    let l = Layout::new();
    let mut cfg = ClusterConfig::new(5, Protocol::VcSd);
    cfg.net.base_drop_prob = 0.10;
    cfg.barrier_timeout = vopp_sim::SimDuration::from_millis(500);
    let out = run_cluster(&cfg, l.freeze(), |ctx| {
        for _ in 0..30 {
            ctx.barrier();
        }
        ctx.now().nanos()
    });
    assert_eq!(out.stats.barriers(), 30);
    assert!(out.stats.rexmits() > 0);
}

/// The same program text runs on VC_d and VC_sd with identical results and
/// identical acquire/barrier counts — only the transport-level statistics
/// differ (the paper's "same program, different implementation" premise).
#[test]
fn vcd_vcsd_program_equivalence() {
    let run = |proto: Protocol| {
        let mut l = Layout::new();
        let views: Vec<_> = (0..6).map(|_| l.add_view(128)).collect();
        run_cluster(&ClusterConfig::lossless(4, proto), l.freeze(), move |ctx| {
            let mut acc = 0u64;
            for round in 0..5 {
                for (v, addr) in &views {
                    ctx.acquire_view(*v);
                    ctx.update_u32(*addr, |x| x + round + 1);
                    ctx.release_view(*v);
                }
                ctx.barrier();
                for (v, addr) in &views {
                    ctx.acquire_rview(*v);
                    acc += ctx.read_u32(*addr) as u64;
                    ctx.release_rview(*v);
                }
                ctx.barrier();
            }
            acc
        })
    };
    let d = run(Protocol::VcD);
    let sd = run(Protocol::VcSd);
    assert_eq!(d.results, sd.results);
    assert_eq!(d.stats.acquires(), sd.stats.acquires());
    assert_eq!(d.stats.barriers(), sd.stats.barriers());
    assert_eq!(sd.stats.diff_requests(), 0);
    assert!(d.stats.diff_requests() > 0);
    assert!(sd.stats.num_msgs() < d.stats.num_msgs());
}

/// Single-node cluster: every operation degenerates to loopback and all
/// protocols behave identically.
#[test]
fn single_node_degenerate_cluster() {
    for proto in [Protocol::LrcD, Protocol::VcD, Protocol::VcSd] {
        let mut l = Layout::new();
        let outcome = if proto == Protocol::LrcD {
            let addr = l.alloc(64, 4);
            run_cluster(&ClusterConfig::new(1, proto), l.freeze(), move |ctx| {
                ctx.lock_acquire(0);
                ctx.write_u32(addr, 5);
                ctx.lock_release(0);
                ctx.barrier();
                ctx.read_u32(addr)
            })
        } else {
            let (v, addr) = l.add_view(64);
            run_cluster(&ClusterConfig::new(1, proto), l.freeze(), move |ctx| {
                ctx.acquire_view(v);
                ctx.write_u32(addr, 5);
                ctx.release_view(v);
                ctx.barrier();
                ctx.acquire_rview(v);
                let got = ctx.read_u32(addr);
                ctx.release_rview(v);
                got
            })
        };
        assert_eq!(outcome.results, vec![5], "{proto}");
        assert_eq!(
            outcome.stats.num_msgs(),
            0,
            "{proto}: 1-node runs stay off the wire"
        );
    }
}
