//! Failure-injection tests: the protocols must produce identical verified
//! results under arbitrary datagram loss, duplicate deliveries (from
//! retransmission) and manager-queue contention.

use vopp_dsm::{run_cluster, ClusterConfig, FaultPlan, Layout, Protocol};
use vopp_metrics::Phase;
use vopp_sim::{SimDuration, SimTime};

/// Sweep loss seeds and rates: results must never change, only timings and
/// retransmission counts. (The per-round updates commute, so the
/// timing-dependent acquisition order cannot affect the final value.)
#[test]
fn loss_sweep_preserves_results() {
    for proto in [Protocol::LrcD, Protocol::VcD, Protocol::VcSd] {
        let mut reference = None;
        for (rate, seed) in [(0.0, 1), (0.01, 2), (0.03, 3), (0.08, 4), (0.01, 99)] {
            let mut l = Layout::new();
            let (results, rexmits) = if proto == Protocol::LrcD {
                let addr = l.alloc(256, 4);
                let mut cfg = ClusterConfig::new(3, proto);
                cfg.faults = FaultPlan::none().with_loss(rate, seed);
                let out = run_cluster(&cfg, l.freeze(), move |ctx| {
                    for round in 0..6u32 {
                        ctx.lock_acquire(1);
                        ctx.update_u32(addr, |x| x + (ctx.me() as u32 + 1) * (round + 1));
                        ctx.lock_release(1);
                        ctx.barrier();
                    }
                    ctx.read_u32(addr)
                });
                (out.results, out.stats.rexmits())
            } else {
                let (v, addr) = l.add_view(16);
                let mut cfg = ClusterConfig::new(3, proto);
                cfg.faults = FaultPlan::none().with_loss(rate, seed);
                let out = run_cluster(&cfg, l.freeze(), move |ctx| {
                    for round in 0..6u32 {
                        ctx.acquire_view(v);
                        ctx.update_u32(addr, |x| x + (ctx.me() as u32 + 1) * (round + 1));
                        ctx.release_view(v);
                        ctx.barrier();
                    }
                    ctx.acquire_rview(v);
                    let got = ctx.read_u32(addr);
                    ctx.release_rview(v);
                    got
                });
                (out.results, out.stats.rexmits())
            };
            // All nodes converge on the same value...
            assert!(
                results.windows(2).all(|w| w[0] == w[1]),
                "{proto} rate={rate}"
            );
            // ...and the value is independent of the loss pattern.
            match &reference {
                None => reference = Some(results),
                Some(r) => assert_eq!(r, &results, "{proto} rate={rate} seed={seed}"),
            }
            if rate >= 0.05 {
                assert!(rexmits > 0, "{proto}: heavy loss must retransmit");
            }
        }
    }
}

/// View grants are FIFO: queued writers are served in request-arrival
/// order, so a long producer chain is starvation-free.
#[test]
fn view_queue_is_fifo_and_starvation_free() {
    let mut l = Layout::new();
    let (v, addr) = l.add_view(4 * 64);
    let np = 8;
    let out = run_cluster(
        &ClusterConfig::lossless(np, Protocol::VcSd),
        l.freeze(),
        move |ctx| {
            // Everyone stamps the next free slot with its id, 8 times. FIFO
            // grant order bounds how long anyone can wait.
            for _ in 0..8 {
                ctx.acquire_view(v);
                let n = ctx.read_u32(addr);
                ctx.write_u32(addr + 4 + 4 * n as usize, ctx.me() as u32);
                ctx.write_u32(addr, n + 1);
                ctx.release_view(v);
            }
            ctx.barrier();
            ctx.acquire_rview(v);
            let total = ctx.read_u32(addr);
            let mut counts = vec![0u32; np];
            for i in 0..total as usize {
                counts[ctx.read_u32(addr + 4 + 4 * i) as usize] += 1;
            }
            ctx.release_rview(v);
            (total, counts)
        },
    );
    for (total, counts) in &out.results {
        assert_eq!(*total, 64);
        // Every proc got exactly its 8 slots: nobody starved or duplicated.
        assert!(counts.iter().all(|&c| c == 8));
    }
}

/// Several locks with overlapping critical sections on LRC: total counts
/// must be exact under loss.
#[test]
fn multi_lock_contention_under_loss() {
    let mut l = Layout::new();
    let a = l.alloc(4, 4);
    let b = l.alloc(4, 4);
    let mut cfg = ClusterConfig::new(6, Protocol::LrcD);
    cfg.faults = FaultPlan::none().with_loss(0.02, cfg.net.seed);
    let out = run_cluster(&cfg, l.freeze(), move |ctx| {
        for i in 0..10 {
            let lock = (ctx.me() + i) % 2;
            ctx.lock_acquire(lock as u32);
            let addr = if lock == 0 { a } else { b };
            ctx.update_u32(addr, |x| x + 1);
            ctx.lock_release(lock as u32);
        }
        ctx.barrier();
        ctx.lock_acquire(0);
        ctx.lock_release(0);
        ctx.lock_acquire(1);
        ctx.lock_release(1);
        (ctx.read_u32(a), ctx.read_u32(b))
    });
    for (va, vb) in &out.results {
        assert_eq!(va + vb, 60, "increments must never be lost or doubled");
    }
}

/// Barrier episodes survive loss of arrival and release messages (the
/// manager regenerates releases for retransmitted arrivals).
#[test]
fn barriers_survive_heavy_loss() {
    let l = Layout::new();
    let mut cfg = ClusterConfig::new(5, Protocol::VcSd);
    cfg.faults = FaultPlan::none().with_loss(0.10, cfg.net.seed);
    cfg.barrier_timeout = SimDuration::from_millis(500);
    let out = run_cluster(&cfg, l.freeze(), |ctx| {
        for _ in 0..30 {
            ctx.barrier();
        }
        ctx.now().nanos()
    });
    assert_eq!(out.stats.barriers(), 30);
    assert!(out.stats.rexmits() > 0);
}

/// The same program text runs on VC_d and VC_sd with identical results and
/// identical acquire/barrier counts — only the transport-level statistics
/// differ (the paper's "same program, different implementation" premise).
#[test]
fn vcd_vcsd_program_equivalence() {
    let run = |proto: Protocol| {
        let mut l = Layout::new();
        let views: Vec<_> = (0..6).map(|_| l.add_view(128)).collect();
        run_cluster(&ClusterConfig::lossless(4, proto), l.freeze(), move |ctx| {
            let mut acc = 0u64;
            for round in 0..5 {
                for (v, addr) in &views {
                    ctx.acquire_view(*v);
                    ctx.update_u32(*addr, |x| x + round + 1);
                    ctx.release_view(*v);
                }
                ctx.barrier();
                for (v, addr) in &views {
                    ctx.acquire_rview(*v);
                    acc += ctx.read_u32(*addr) as u64;
                    ctx.release_rview(*v);
                }
                ctx.barrier();
            }
            acc
        })
    };
    let d = run(Protocol::VcD);
    let sd = run(Protocol::VcSd);
    assert_eq!(d.results, sd.results);
    assert_eq!(d.stats.acquires(), sd.stats.acquires());
    assert_eq!(d.stats.barriers(), sd.stats.barriers());
    assert_eq!(sd.stats.diff_requests(), 0);
    assert!(d.stats.diff_requests() > 0);
    assert!(sd.stats.num_msgs() < d.stats.num_msgs());
}

/// Single-node cluster: every operation degenerates to loopback and all
/// protocols behave identically.
#[test]
fn single_node_degenerate_cluster() {
    for proto in [Protocol::LrcD, Protocol::VcD, Protocol::VcSd] {
        let mut l = Layout::new();
        let outcome = if proto == Protocol::LrcD {
            let addr = l.alloc(64, 4);
            run_cluster(&ClusterConfig::new(1, proto), l.freeze(), move |ctx| {
                ctx.lock_acquire(0);
                ctx.write_u32(addr, 5);
                ctx.lock_release(0);
                ctx.barrier();
                ctx.read_u32(addr)
            })
        } else {
            let (v, addr) = l.add_view(64);
            run_cluster(&ClusterConfig::new(1, proto), l.freeze(), move |ctx| {
                ctx.acquire_view(v);
                ctx.write_u32(addr, 5);
                ctx.release_view(v);
                ctx.barrier();
                ctx.acquire_rview(v);
                let got = ctx.read_u32(addr);
                ctx.release_rview(v);
                got
            })
        };
        assert_eq!(outcome.results, vec![5], "{proto}");
        assert_eq!(
            outcome.stats.num_msgs(),
            0,
            "{proto}: 1-node runs stay off the wire"
        );
    }
}

/// A slowdown fault scales one node's cost model. Results never change,
/// but the slowed node finishes later and drags the whole run with it.
#[test]
fn slowdown_delays_one_node_without_changing_results() {
    let run = |faults: FaultPlan| {
        let mut l = Layout::new();
        let (v, addr) = l.add_view(64);
        let mut cfg = ClusterConfig::lossless(4, Protocol::VcSd);
        cfg.faults = faults;
        run_cluster(&cfg, l.freeze(), move |ctx| {
            for _ in 0..4 {
                ctx.flops(50_000);
                ctx.acquire_view(v);
                ctx.update_u32(addr, |x| x + 1);
                ctx.release_view(v);
                ctx.barrier();
            }
            ctx.acquire_rview(v);
            let got = ctx.read_u32(addr);
            ctx.release_rview(v);
            got
        })
    };
    let base = run(FaultPlan::none());
    let slow = run(FaultPlan::none().with_slowdown(2, 3.0));
    assert_eq!(base.results, slow.results);
    assert_eq!(base.results, vec![16; 4]);
    assert!(
        slow.stats.node_end[2] > base.stats.node_end[2],
        "the slowed node must take longer"
    );
    assert!(slow.stats.time > base.stats.time);
}

/// `idle_until` parks a node in virtual time and charges the wait to the
/// `Idle` phase, leaving the fault-free phase groups untouched.
#[test]
fn idle_until_charges_the_idle_phase() {
    let l = Layout::new();
    let out = run_cluster(
        &ClusterConfig::lossless(2, Protocol::VcSd),
        l.freeze(),
        |ctx| {
            let mut idled = 0;
            if ctx.me() == 1 {
                idled = ctx.idle_until(SimTime::default() + SimDuration::from_millis(2));
                // Idling to a time already in the past is free.
                idled += ctx.idle_until(SimTime::default());
            }
            ctx.barrier();
            idled
        },
    );
    assert_eq!(out.results[0], 0);
    assert_eq!(out.results[1], 2_000_000);
    assert_eq!(out.stats.node_breakdowns[1].get(Phase::Idle), 2_000_000);
    assert_eq!(out.stats.node_breakdowns[0].get(Phase::Idle), 0);
}

/// Crash and recovery: a node drops every cached view page plus its
/// unapplied write-notice state, then lazily refetches the full view
/// history from the home nodes on its next acquire. The reconstructed
/// contents must be byte-for-byte what the survivors hold.
#[test]
fn crash_recovery_reconstructs_view_state_from_homes() {
    for proto in [Protocol::VcD, Protocol::VcSd] {
        let mut l = Layout::new();
        let (v, addr) = l.add_view(256);
        let (w, waddr) = l.add_view(128);
        let out = run_cluster(&ClusterConfig::lossless(3, proto), l.freeze(), move |ctx| {
            // Phase 1: everyone accumulates into its own slots of both
            // views, so every node caches copies of every page.
            for round in 1..=4u32 {
                ctx.acquire_view(v);
                ctx.update_u32(addr + 4 * ctx.me(), |x| x + round);
                ctx.release_view(v);
                ctx.acquire_view(w);
                ctx.update_u32(waddr + 4 * ctx.me(), |x| x + 2 * round);
                ctx.release_view(w);
                ctx.barrier();
            }
            // Phase 2: node 1 crashes, losing all cached view pages.
            let dropped = if ctx.me() == 1 {
                ctx.crash_recover()
            } else {
                0
            };
            ctx.barrier();
            // Phase 3: everyone re-reads. The crashed node starts from
            // zeroed frames and version 0, so its acquire pulls the
            // complete history back from the home nodes.
            ctx.acquire_rview(v);
            let a: Vec<u32> = (0..3).map(|i| ctx.read_u32(addr + 4 * i)).collect();
            ctx.release_rview(v);
            ctx.acquire_rview(w);
            let b: Vec<u32> = (0..3).map(|i| ctx.read_u32(waddr + 4 * i)).collect();
            ctx.release_rview(w);
            (a, b, dropped)
        });
        for (node, (a, b, dropped)) in out.results.iter().enumerate() {
            assert_eq!(a, &vec![10, 10, 10], "{proto} node {node}: view v");
            assert_eq!(b, &vec![20, 20, 20], "{proto} node {node}: view w");
            if node == 1 {
                assert!(*dropped > 0, "{proto}: the crash must shed pages");
            } else {
                assert_eq!(*dropped, 0);
            }
        }
        if proto == Protocol::VcSd {
            // Single-diffing stays diff-request-free even across recovery:
            // full-history grants carry the diffs inline.
            assert_eq!(out.stats.diff_requests(), 0);
        } else {
            assert!(out.stats.diff_requests() > 0);
        }
    }
}

/// A crash mid-stream with further writes afterwards: the recovered node
/// must see writes from before its crash (including its own, whose diffs
/// lived only in its durable diff store) and writes that happened while it
/// was down.
#[test]
fn crash_recovery_catches_up_on_missed_writes() {
    let mut l = Layout::new();
    let (v, addr) = l.add_view(64);
    let out = run_cluster(
        &ClusterConfig::lossless(4, Protocol::VcD),
        l.freeze(),
        move |ctx| {
            ctx.acquire_view(v);
            ctx.update_u32(addr, |x| x + 1 + ctx.me() as u32);
            ctx.release_view(v);
            ctx.barrier();
            if ctx.me() == 3 {
                ctx.crash_recover();
                // Down for 1ms of virtual time while the others write.
                ctx.idle_until(ctx.now() + SimDuration::from_millis(1));
            } else {
                ctx.acquire_view(v);
                ctx.update_u32(addr, |x| x + 100);
                ctx.release_view(v);
            }
            ctx.barrier();
            ctx.acquire_rview(v);
            let got = ctx.read_u32(addr);
            ctx.release_rview(v);
            got
        },
    );
    // 1+2+3+4 from round one, plus 3 × 100 while node 3 was down.
    assert_eq!(out.results, vec![310; 4]);
}

/// The fault-plan label grammar round-trips and rejects nonsense — the
/// bench CLI leans on this for `--faults`.
#[test]
fn fault_plan_labels_round_trip() {
    let plan = FaultPlan::none()
        .with_loss(0.02, 7)
        .with_slowdown(3, 1.5)
        .with_crash(
            2,
            SimTime::default() + SimDuration::from_millis(40),
            SimDuration::from_millis(30),
        );
    let label = plan.label();
    assert_eq!(label, "loss=0.02@7,slow=3x1.5,crash=2@40ms+30ms");
    assert_eq!(FaultPlan::parse(&label).unwrap(), plan);
    assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
    assert!(FaultPlan::parse("crash=2").is_err());
}
