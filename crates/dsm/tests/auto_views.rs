//! Tests of automated view-primitive insertion (paper §6 future work).

use vopp_dsm::{run_cluster, ClusterConfig, Layout, Protocol};

#[test]
fn auto_views_produce_correct_results() {
    for proto in [Protocol::VcD, Protocol::VcSd] {
        let mut l = Layout::new();
        let (_, addr) = l.add_view(64);
        let out = run_cluster(&ClusterConfig::lossless(4, proto), l.freeze(), move |ctx| {
            ctx.set_auto_views(true);
            // No explicit acquire/release anywhere: the runtime inserts them.
            for _ in 0..5 {
                ctx.update_u32(addr, |x| x + 1);
            }
            ctx.barrier();
            ctx.read_u32(addr)
        });
        assert!(out.results.iter().all(|&r| r == 20), "{proto}");
    }
}

#[test]
fn auto_views_cost_more_acquires_than_manual() {
    // The reason the paper wants smarter-than-naive insertion: per-access
    // acquisition pays a round trip per element.
    let manual = {
        let mut l = Layout::new();
        let (v, addr) = l.add_view(256);
        run_cluster(
            &ClusterConfig::lossless(2, Protocol::VcSd),
            l.freeze(),
            move |ctx| {
                ctx.acquire_view(v);
                for i in 0..32 {
                    ctx.write_u32(addr + 4 * i, i as u32);
                }
                ctx.release_view(v);
                ctx.barrier();
            },
        )
    };
    let auto = {
        let mut l = Layout::new();
        let (_, addr) = l.add_view(256);
        run_cluster(
            &ClusterConfig::lossless(2, Protocol::VcSd),
            l.freeze(),
            move |ctx| {
                ctx.set_auto_views(true);
                for i in 0..32 {
                    ctx.write_u32(addr + 4 * i, i as u32);
                }
                ctx.barrier();
            },
        )
    };
    assert_eq!(manual.stats.acquires(), 2, "one acquire per processor");
    assert_eq!(auto.stats.acquires(), 64, "one acquire per access");
    assert!(auto.stats.time > manual.stats.time);
    assert!(auto.stats.num_msgs() > manual.stats.num_msgs());
}

#[test]
fn auto_views_defer_to_held_views() {
    // Inside an explicit view, auto mode inserts nothing.
    let mut l = Layout::new();
    let (v, addr) = l.add_view(16);
    let out = run_cluster(
        &ClusterConfig::lossless(2, Protocol::VcSd),
        l.freeze(),
        move |ctx| {
            ctx.set_auto_views(true);
            ctx.acquire_view(v);
            ctx.write_u32(addr, 1);
            ctx.write_u32(addr + 4, 2);
            ctx.release_view(v);
            ctx.barrier();
            ctx.read_u32(addr) + ctx.read_u32(addr + 4)
        },
    );
    assert!(out.results.iter().all(|&r| r == 3));
    // 2 explicit writes + 2x2 auto read acquires.
    assert_eq!(out.stats.acquires(), 2 + 4);
}

#[test]
fn auto_reads_use_read_views() {
    // Concurrent auto-readers must not serialize (they get read views).
    let mut l = Layout::new();
    let (v, addr) = l.add_view(8);
    let out = run_cluster(
        &ClusterConfig::lossless(6, Protocol::VcSd),
        l.freeze(),
        move |ctx| {
            if ctx.me() == 0 {
                ctx.acquire_view(v);
                ctx.write_u32(addr, 9);
                ctx.release_view(v);
            }
            ctx.barrier();
            ctx.set_auto_views(true);
            let t0 = ctx.now();
            let val = ctx.read_u32(addr); // auto read view
            ctx.compute_ns(20_000_000.0); // hold nothing: already released
            (val, (ctx.now() - t0).nanos())
        },
    );
    for (val, _) in &out.results {
        assert_eq!(*val, 9);
    }
    assert!(out.stats.time.as_secs_f64() < 0.1);
}

#[test]
#[should_panic(expected = "outside any view")]
fn auto_views_still_reject_unviewed_memory() {
    let mut l = Layout::new();
    let plain = l.alloc(8, 4);
    let (_, _) = l.add_view(8);
    run_cluster(
        &ClusterConfig::lossless(1, Protocol::VcSd),
        l.freeze(),
        move |ctx| {
            ctx.set_auto_views(true);
            let _ = ctx.read_u32(plain);
        },
    );
}
