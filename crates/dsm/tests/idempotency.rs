//! Manager idempotency under duplicate requests, tested by driving raw
//! protocol messages at a node's service handler — exactly what a
//! retransmitting transport produces.

use std::sync::Arc;

use vopp_dsm::homes::make_handler;
use vopp_dsm::{AccessMode, CostModel, Layout, NodeState, Protocol, Req, Resp};
use vopp_page::VTime;
use vopp_sim::sync::Mutex;
use vopp_sim::{DeliveryClass, PerfectNet, Sim, SimDuration};
use vopp_simnet::RPC_TAG_BIT;

/// Build a 2-node sim where node 0 runs a real DSM handler and node 1 is a
/// raw driver sending hand-crafted requests.
fn drive<R: Send>(
    protocol: Protocol,
    build_layout: impl FnOnce(&mut Layout),
    driver: impl Fn(&vopp_sim::AppCtx<'_>) -> R + Send + Sync,
) -> R {
    let mut layout = Layout::new();
    build_layout(&mut layout);
    let layout = layout.freeze();
    let node0 = Arc::new(Mutex::new(NodeState::new(
        0,
        2,
        protocol,
        CostModel::default(),
        layout,
        vopp_page::PagePool::CAP,
    )));
    let mut sim = Sim::new(2, Box::new(PerfectNet::new(SimDuration::from_micros(10))));
    sim.set_handler(0, make_handler(node0));
    let out = sim.run(move |ctx| {
        if ctx.me() == 1 {
            Some(driver(&ctx))
        } else {
            // Node 0's app thread idles while its handler serves.
            ctx.sleep(SimDuration::from_millis(50));
            None
        }
    });
    out.results.into_iter().flatten().next().unwrap()
}

fn send_req(ctx: &vopp_sim::AppCtx<'_>, tag: u64, req: Req) {
    ctx.send(0, 64, DeliveryClass::Svc, RPC_TAG_BIT | tag, Arc::new(req));
}

fn recv_resp(ctx: &vopp_sim::AppCtx<'_>, tag: u64) -> Resp {
    ctx.recv_filter(|p| p.tag == (RPC_TAG_BIT | tag))
        .expect::<Resp>()
}

#[test]
fn duplicate_view_acquire_regrants() {
    drive(
        Protocol::VcSd,
        |l| {
            l.add_view(8);
        },
        |ctx| {
            let req = Req::ViewAcquire {
                view: 0,
                mode: AccessMode::Write,
                have: 0,
            };
            send_req(ctx, 1, req.clone());
            let g1 = recv_resp(ctx, 1);
            // Retransmission of the same acquire (different rpc tag, as the
            // transport would after a lost grant).
            send_req(ctx, 2, req);
            let g2 = recv_resp(ctx, 2);
            match (g1, g2) {
                (Resp::ViewGrant { version: v1, .. }, Resp::ViewGrant { version: v2, .. }) => {
                    assert_eq!(v1, v2, "duplicate acquire must re-grant, not queue")
                }
                other => panic!("expected two grants, got {other:?}"),
            }
        },
    );
}

#[test]
fn duplicate_write_release_acks_same_version() {
    drive(
        Protocol::VcSd,
        |l| {
            l.add_view(8);
        },
        |ctx| {
            send_req(
                ctx,
                1,
                Req::ViewAcquire {
                    view: 0,
                    mode: AccessMode::Write,
                    have: 0,
                },
            );
            let _ = recv_resp(ctx, 1);
            let release = Req::ViewRelease {
                view: 0,
                mode: AccessMode::Write,
                interval: Some(vopp_page::IntervalId { owner: 1, seq: 1 }),
                lamport: 5,
                pages: vec![0],
                diffs: vec![],
            };
            send_req(ctx, 2, release.clone());
            let a1 = recv_resp(ctx, 2);
            send_req(ctx, 3, release); // duplicate after lost ack
            let a2 = recv_resp(ctx, 3);
            match (a1, a2) {
                (Resp::ReleaseAck { version: v1 }, Resp::ReleaseAck { version: v2 }) => {
                    assert_eq!(v1, 1, "first release creates version 1");
                    assert_eq!(v2, 1, "duplicate must not bump the version");
                }
                other => panic!("expected two acks, got {other:?}"),
            }
        },
    );
}

#[test]
fn duplicate_lock_acquire_and_release() {
    drive(
        Protocol::LrcD,
        |l| {
            let _ = l.alloc(8, 4);
        },
        |ctx| {
            let acq = Req::LockAcquire {
                lock: 0,
                vt: VTime::zero(2),
            };
            send_req(ctx, 1, acq.clone());
            assert!(matches!(recv_resp(ctx, 1), Resp::LockGrant { .. }));
            send_req(ctx, 2, acq); // duplicate while holding
            assert!(matches!(recv_resp(ctx, 2), Resp::LockGrant { .. }));

            let rel = Req::LockRelease {
                lock: 0,
                records: vec![],
            };
            send_req(ctx, 3, rel.clone());
            assert!(matches!(recv_resp(ctx, 3), Resp::Ack));
            send_req(ctx, 4, rel); // duplicate after lost ack
            assert!(matches!(recv_resp(ctx, 4), Resp::Ack));
        },
    );
}

#[test]
fn stale_read_release_still_acked() {
    // A duplicate read release arriving after the home already removed the
    // reader (its ack was lost in transit) must be acknowledged again.
    drive(
        Protocol::VcSd,
        |l| {
            l.add_view(8);
        },
        |ctx| {
            // Read-release without ever acquiring (as if the home already
            // processed the release and the ack was lost).
            send_req(
                ctx,
                1,
                Req::ViewRelease {
                    view: 0,
                    mode: AccessMode::Read,
                    interval: None,
                    lamport: 0,
                    pages: vec![],
                    diffs: vec![],
                },
            );
            assert!(matches!(recv_resp(ctx, 1), Resp::Ack));
        },
    );
}

#[test]
fn diff_requests_are_pure_reads() {
    drive(
        Protocol::VcD,
        |l| {
            l.add_view(8);
        },
        |ctx| {
            send_req(
                ctx,
                1,
                Req::ViewAcquire {
                    view: 0,
                    mode: AccessMode::Write,
                    have: 0,
                },
            );
            let _ = recv_resp(ctx, 1);
            // Page content requests are pure reads: asking twice returns
            // identical content and never disturbs manager state.
            send_req(ctx, 2, Req::PageReq { page: 0 });
            let p1 = recv_resp(ctx, 2);
            send_req(ctx, 3, Req::PageReq { page: 0 });
            let p2 = recv_resp(ctx, 3);
            match (p1, p2) {
                (Resp::PageResp { content: Some(a) }, Resp::PageResp { content: Some(b) }) => {
                    assert_eq!(&**a, &**b);
                }
                other => panic!("expected two page responses, got {other:?}"),
            }
        },
    );
}
