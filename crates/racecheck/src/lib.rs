//! vopp-racecheck: dynamic correctness checking for both programming models
//! the paper compares (§2, §3).
//!
//! Two checkers live behind one [`RaceChecker`] facade, selected by
//! [`Mode`]:
//!
//! * **Happens-before data-race detection** ([`Mode::HappensBefore`]) for
//!   traditional lock/barrier programs on the LRC-family protocols. Every
//!   shared access is recorded as a per-word-range shadow record carrying
//!   the accessor's vector-clock epoch; locks and barriers propagate vector
//!   timestamps ([`vopp_page::VTime`], the same machinery the protocols
//!   use). Two overlapping accesses from different nodes, at least one a
//!   write, with neither ordered before the other, are a data race.
//!   Detection is *word-range* precise: false sharing (distinct ranges on
//!   one page) is not a race.
//! * **View-discipline checking** ([`Mode::ViewDiscipline`]) for VOPP
//!   programs: every shared access must fall inside a currently-acquired
//!   view that owns the touched addresses, and writes need the exclusive
//!   view (paper §2: "debugging is easier since the runtime can detect view
//!   access violations"). The DSM layer classifies each violation into a
//!   [`DisciplineRule`] and reports it here.
//!
//! The checker is pure observation: it never blocks, never advances virtual
//! time, and deduplicates violations by a canonical key so seeded-racy runs
//! produce exact, deterministic counts.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use vopp_page::{pages_spanned, Addr, PageId, VTime, PAGE_SIZE};

/// Which discipline a [`RaceChecker`] validates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Vector-clock happens-before race detection (traditional programs).
    HappensBefore,
    /// VOPP view-discipline checking (view-structured programs).
    ViewDiscipline,
}

/// One recorded shared-memory access, as named in a race report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccessRec {
    /// The accessing node.
    pub node: usize,
    /// First byte touched (absolute shared address).
    pub start: Addr,
    /// One past the last byte touched.
    pub end: Addr,
    /// Whether the access was a write.
    pub write: bool,
    /// The accessor's own vector-clock component at access time.
    pub clock: u32,
}

impl AccessRec {
    fn describe(&self) -> String {
        format!(
            "node {} {} [{:#x}, {:#x}) @epoch {}",
            self.node,
            if self.write { "write" } else { "read" },
            self.start,
            self.end,
            self.clock
        )
    }
}

/// Why a VOPP access violates the view discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DisciplineRule {
    /// The address belongs to no declared view (shared data outside views).
    OutsideViews,
    /// The address belongs to a view, but no view is held at all.
    Unbracketed,
    /// A view is held, but the address belongs to a different view.
    ForeignView,
    /// A write while the owning view is held read-only (`acquire_Rview`).
    ReadOnlyWrite,
}

impl DisciplineRule {
    /// Stable snake_case label (used in reports and trace events).
    pub fn label(self) -> &'static str {
        match self {
            DisciplineRule::OutsideViews => "outside_views",
            DisciplineRule::Unbracketed => "unbracketed",
            DisciplineRule::ForeignView => "foreign_view",
            DisciplineRule::ReadOnlyWrite => "read_only_write",
        }
    }
}

/// One confirmed violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two unordered conflicting accesses (happens-before mode).
    DataRace {
        /// Page both accesses touch.
        page: PageId,
        /// The earlier-recorded access.
        first: AccessRec,
        /// The access that completed the race.
        second: AccessRec,
    },
    /// A view-discipline violation (VOPP mode).
    Discipline {
        /// The broken rule.
        rule: DisciplineRule,
        /// The offending node.
        node: usize,
        /// The view owning the touched addresses, if any.
        view: Option<u32>,
        /// Page touched.
        page: PageId,
        /// First byte touched (absolute shared address).
        start: Addr,
        /// One past the last byte touched.
        end: Addr,
        /// Whether the access was a write.
        write: bool,
    },
}

impl Violation {
    /// One-line human-readable description naming node, page/view, address
    /// range and (for races) the two unordered accesses.
    pub fn describe(&self) -> String {
        match self {
            Violation::DataRace {
                page,
                first,
                second,
            } => format!(
                "data race on page {page}: {} is unordered with {}",
                first.describe(),
                second.describe()
            ),
            Violation::Discipline {
                rule,
                node,
                view,
                page,
                start,
                end,
                write,
            } => {
                let v = match view {
                    Some(v) => format!("view {v}"),
                    None => "no view".to_string(),
                };
                format!(
                    "view discipline ({}) on node {node}: {} [{start:#x}, {end:#x}) \
                     on page {page} ({v})",
                    rule.label(),
                    if *write { "write" } else { "read" },
                )
            }
        }
    }

    /// Canonical deduplication key: the same logical violation detected
    /// from either side (or repeatedly) maps to one key.
    fn key(&self) -> String {
        match self {
            Violation::DataRace {
                page,
                first,
                second,
            } => {
                let (a, b) = if first <= second {
                    (first, second)
                } else {
                    (second, first)
                };
                format!(
                    "race:{page}:{}:{}:{}:{}:{}:{}:{}:{}",
                    a.node, a.start, a.end, a.write, b.node, b.start, b.end, b.write
                )
            }
            Violation::Discipline {
                rule,
                node,
                view,
                page,
                start,
                end,
                write,
            } => format!(
                "disc:{}:{node}:{view:?}:{page}:{start}:{end}:{write}",
                rule.label()
            ),
        }
    }
}

/// A shadow access record kept per page.
#[derive(Debug, Clone, Copy)]
struct Shadow {
    start: Addr,
    end: Addr,
    node: usize,
    write: bool,
    clock: u32,
}

struct Inner {
    n: usize,
    /// Per-node vector clock; node `i`'s own component starts at 1 so the
    /// initial epoch is distinguishable from "never synchronized with".
    clocks: Vec<VTime>,
    /// Per-lock release clock (join of every releaser's clock).
    locks: BTreeMap<u32, VTime>,
    /// Per-barrier-episode clock (join of every arriver's clock).
    barriers: BTreeMap<u32, VTime>,
    /// How many nodes have left each episode (for garbage collection).
    barrier_exits: BTreeMap<u32, usize>,
    /// Per-page shadow access records.
    shadow: BTreeMap<PageId, Vec<Shadow>>,
    violations: Vec<Violation>,
    seen: BTreeSet<String>,
}

impl Inner {
    /// Record `v` unless its canonical key was already seen. Returns
    /// whether it was fresh.
    fn push(&mut self, v: Violation) -> bool {
        if self.seen.insert(v.key()) {
            self.violations.push(v);
            true
        } else {
            false
        }
    }
}

/// The dynamic checker attached to one simulated cluster run.
///
/// Thread-safe: the simulator runs one node thread at a time, but handler
/// and app threads are real OS threads, so all state sits behind a mutex.
/// All methods are pure observation — they never advance virtual time, so
/// attaching a checker does not change the simulated execution.
pub struct RaceChecker {
    mode: Mode,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for RaceChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaceChecker")
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

impl RaceChecker {
    /// A checker for a run of `n` nodes validating `mode`.
    pub fn new(mode: Mode, n: usize) -> RaceChecker {
        let clocks = (0..n)
            .map(|i| {
                let mut c = VTime::zero(n);
                c.set(i, 1);
                c
            })
            .collect();
        RaceChecker {
            mode,
            inner: Mutex::new(Inner {
                n,
                clocks,
                locks: BTreeMap::new(),
                barriers: BTreeMap::new(),
                barrier_exits: BTreeMap::new(),
                shadow: BTreeMap::new(),
                violations: Vec::new(),
                seen: BTreeSet::new(),
            }),
        }
    }

    /// Which discipline this checker validates.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    // ---------------------------------------------------------------
    // Happens-before mode: accesses and synchronization
    // ---------------------------------------------------------------

    /// Record a shared access of `[addr, addr+len)` by `node` and check it
    /// against the shadow records. Returns the freshly detected races (for
    /// trace emission); they are also retained internally.
    pub fn access(&self, node: usize, addr: Addr, len: usize, write: bool) -> Vec<Violation> {
        debug_assert_eq!(self.mode, Mode::HappensBefore);
        let mut fresh = Vec::new();
        if len == 0 {
            return fresh;
        }
        let mut g = self.inner.lock().unwrap();
        let my_view_of = g.clocks[node].clone();
        let my_clock = my_view_of.get(node);
        for p in pages_spanned(addr, len) {
            let ps = p * PAGE_SIZE;
            let start = addr.max(ps);
            let end = (addr + len).min(ps + PAGE_SIZE);
            let second = AccessRec {
                node,
                start,
                end,
                write,
                clock: my_clock,
            };
            let mut found = Vec::new();
            let recs = g.shadow.entry(p).or_default();
            for r in recs.iter() {
                let conflict = r.node != node
                    && (r.write || write)
                    && r.start < end
                    && start < r.end
                    && r.clock > my_view_of.get(r.node);
                if conflict {
                    found.push(Violation::DataRace {
                        page: p,
                        first: AccessRec {
                            node: r.node,
                            start: r.start,
                            end: r.end,
                            write: r.write,
                            clock: r.clock,
                        },
                        second,
                    });
                }
            }
            // Merge: a newer same-node, same-kind record covering an older
            // one supersedes it (its epoch is >= and its range contains the
            // old range, so every future race with the old record is also a
            // race with the new one).
            recs.retain(|r| {
                !(r.node == node && r.write == write && start <= r.start && r.end <= end)
            });
            recs.push(Shadow {
                start,
                end,
                node,
                write,
                clock: my_clock,
            });
            for v in found {
                if g.push(v.clone()) {
                    fresh.push(v);
                }
            }
        }
        fresh
    }

    /// A lock grant completed: `node` now holds `lock` and inherits the
    /// ordering published by its previous releasers.
    pub fn lock_acquired(&self, node: usize, lock: u32) {
        debug_assert_eq!(self.mode, Mode::HappensBefore);
        let mut g = self.inner.lock().unwrap();
        if let Some(lc) = g.locks.get(&lock).cloned() {
            g.clocks[node].join_from(&lc);
        }
    }

    /// `node` releases `lock`: its clock joins the lock's release clock and
    /// its own epoch advances. Call *before* the release message is sent,
    /// so a remote acquire granted afterwards observes the ordering.
    pub fn lock_released(&self, node: usize, lock: u32) {
        debug_assert_eq!(self.mode, Mode::HappensBefore);
        let mut g = self.inner.lock().unwrap();
        let n = g.n;
        let cl = g.clocks[node].clone();
        g.locks
            .entry(lock)
            .or_insert_with(|| VTime::zero(n))
            .join_from(&cl);
        g.clocks[node].bump(node);
    }

    /// `node` arrives at barrier `episode`, contributing its clock. Call
    /// before the arrive message is sent.
    pub fn barrier_enter(&self, node: usize, episode: u32) {
        debug_assert_eq!(self.mode, Mode::HappensBefore);
        let mut g = self.inner.lock().unwrap();
        let n = g.n;
        let cl = g.clocks[node].clone();
        g.barriers
            .entry(episode)
            .or_insert_with(|| VTime::zero(n))
            .join_from(&cl);
    }

    /// `node` leaves barrier `episode`: every arriver's clock is inherited
    /// and the node's epoch advances. Call after the release reply.
    pub fn barrier_exit(&self, node: usize, episode: u32) {
        debug_assert_eq!(self.mode, Mode::HappensBefore);
        let mut g = self.inner.lock().unwrap();
        if let Some(bc) = g.barriers.get(&episode).cloned() {
            g.clocks[node].join_from(&bc);
        }
        g.clocks[node].bump(node);
        let n = g.n;
        let exits = g.barrier_exits.entry(episode).or_insert(0);
        *exits += 1;
        if *exits == n {
            g.barriers.remove(&episode);
            g.barrier_exits.remove(&episode);
        }
    }

    // ---------------------------------------------------------------
    // View-discipline mode
    // ---------------------------------------------------------------

    /// Record a view-discipline violation classified by the DSM layer.
    /// Returns whether it was fresh (not a duplicate of an already-recorded
    /// violation), so callers can emit one trace event per distinct
    /// violation.
    #[allow(clippy::too_many_arguments)]
    pub fn record_discipline(
        &self,
        rule: DisciplineRule,
        node: usize,
        view: Option<u32>,
        page: PageId,
        start: Addr,
        end: Addr,
        write: bool,
    ) -> bool {
        debug_assert_eq!(self.mode, Mode::ViewDiscipline);
        self.inner.lock().unwrap().push(Violation::Discipline {
            rule,
            node,
            view,
            page,
            start,
            end,
            write,
        })
    }

    // ---------------------------------------------------------------
    // Results
    // ---------------------------------------------------------------

    /// Number of distinct violations recorded so far.
    pub fn count(&self) -> usize {
        self.inner.lock().unwrap().violations.len()
    }

    /// All distinct violations, in detection order (deterministic: the
    /// simulation schedule is deterministic).
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().unwrap().violations.clone()
    }

    /// Multi-line report: a summary line followed by one numbered line per
    /// violation. Empty string when clean.
    pub fn report(&self) -> String {
        let vs = self.violations();
        if vs.is_empty() {
            return String::new();
        }
        let races = vs
            .iter()
            .filter(|v| matches!(v, Violation::DataRace { .. }))
            .count();
        let disc = vs.len() - races;
        let mut out = format!(
            "{} violation(s): {races} data race(s), {disc} discipline violation(s)\n",
            vs.len()
        );
        for (i, v) in vs.iter().enumerate() {
            out.push_str(&format!("  #{:<3} {}\n", i + 1, v.describe()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb(n: usize) -> RaceChecker {
        RaceChecker::new(Mode::HappensBefore, n)
    }

    #[test]
    fn unordered_write_write_is_a_race() {
        let rc = hb(2);
        assert!(rc.access(0, 0x100, 8, true).is_empty());
        let races = rc.access(1, 0x104, 8, true);
        assert_eq!(races.len(), 1);
        assert_eq!(rc.count(), 1);
        match &races[0] {
            Violation::DataRace {
                page,
                first,
                second,
            } => {
                assert_eq!(*page, 0);
                assert_eq!(first.node, 0);
                assert_eq!(second.node, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_read_is_not_a_race() {
        let rc = hb(2);
        rc.access(0, 0, 64, false);
        assert!(rc.access(1, 0, 64, false).is_empty());
        assert_eq!(rc.count(), 0);
    }

    #[test]
    fn disjoint_ranges_on_one_page_are_not_a_race() {
        // The false-sharing case: same page, different words.
        let rc = hb(2);
        rc.access(0, 0, 64, true);
        assert!(rc.access(1, 64, 64, true).is_empty());
        assert_eq!(rc.count(), 0);
    }

    #[test]
    fn lock_ordering_suppresses_the_race() {
        let rc = hb(2);
        rc.lock_acquired(0, 7);
        rc.access(0, 0, 8, true);
        rc.lock_released(0, 7);
        rc.lock_acquired(1, 7);
        assert!(rc.access(1, 0, 8, true).is_empty());
        rc.lock_released(1, 7);
        assert_eq!(rc.count(), 0);
    }

    #[test]
    fn different_locks_do_not_order() {
        let rc = hb(2);
        rc.lock_acquired(0, 1);
        rc.access(0, 0, 8, true);
        rc.lock_released(0, 1);
        rc.lock_acquired(1, 2);
        assert_eq!(rc.access(1, 0, 8, true).len(), 1);
        rc.lock_released(1, 2);
    }

    #[test]
    fn barrier_ordering_suppresses_the_race() {
        let rc = hb(3);
        rc.access(0, 0, 8, true);
        for node in 0..3 {
            rc.barrier_enter(node, 0);
        }
        for node in 0..3 {
            rc.barrier_exit(node, 0);
        }
        assert!(rc.access(1, 0, 8, true).is_empty());
        assert!(rc.access(2, 16, 8, false).is_empty());
        assert_eq!(rc.count(), 0);
    }

    #[test]
    fn race_before_barrier_still_detected_after() {
        let rc = hb(2);
        rc.access(0, 0, 8, true);
        rc.access(1, 0, 8, true); // race happens here
        for node in 0..2 {
            rc.barrier_enter(node, 0);
        }
        for node in 0..2 {
            rc.barrier_exit(node, 0);
        }
        assert_eq!(rc.count(), 1);
    }

    #[test]
    fn duplicate_pairs_dedupe() {
        let rc = hb(2);
        rc.access(0, 0, 8, true);
        rc.access(1, 0, 8, true);
        rc.access(1, 0, 8, true); // same pair again (record superseded)
        rc.access(0, 0, 8, true); // detected from the other side
        assert_eq!(rc.count(), 1);
    }

    #[test]
    fn read_write_race_both_directions() {
        let rc = hb(2);
        rc.access(0, 0, 8, false);
        assert_eq!(rc.access(1, 0, 8, true).len(), 1);
        let rc = hb(2);
        rc.access(0, 0, 8, true);
        assert_eq!(rc.access(1, 0, 8, false).len(), 1);
    }

    #[test]
    fn access_spanning_pages_clips_per_page() {
        let rc = hb(2);
        rc.access(0, PAGE_SIZE - 8, 16, true);
        // Conflicts exist on both pages; two distinct per-page races.
        let races = rc.access(1, PAGE_SIZE - 8, 16, true);
        assert_eq!(races.len(), 2);
    }

    #[test]
    fn discipline_dedupes_and_reports() {
        let rc = RaceChecker::new(Mode::ViewDiscipline, 2);
        assert!(rc.record_discipline(DisciplineRule::Unbracketed, 0, Some(3), 5, 100, 108, false));
        assert!(!rc.record_discipline(DisciplineRule::Unbracketed, 0, Some(3), 5, 100, 108, false));
        assert!(rc.record_discipline(DisciplineRule::OutsideViews, 1, None, 9, 0, 4, true));
        assert_eq!(rc.count(), 2);
        let rep = rc.report();
        assert!(rep.contains("2 violation(s)"));
        assert!(rep.contains("unbracketed"));
        assert!(rep.contains("outside_views"));
    }

    #[test]
    fn clean_checker_reports_empty() {
        assert_eq!(hb(2).report(), "");
    }
}
