#![warn(missing_docs)]

//! # vopp-apps — the paper's application suite
//!
//! The four applications evaluated in the paper (§5), each as a traditional
//! DSM program (for LRC_d) and a VOPP program (for VC_d / VC_sd), plus the
//! MPI baseline for NN:
//!
//! | App | Traditional | VOPP | Paper tables |
//! |---|---|---|---|
//! | [`is`] Integer Sort | packed partial histograms, barrier-phased | histogram chunk views (+ hoisted-barrier variant) | 1, 2, 3 |
//! | [`gauss`] Gauss–Jacobi | packed shared solution vector | per-slice solution views | 4, 5 |
//! | [`sor`] grid relaxation | whole grid shared | local blocks + border views | 6, 7 |
//! | [`nn`] back-prop NN | lock-accumulated gradient | Rview weights + delta views; MPI allreduce | 8, 9 |
//!
//! Every application has a sequential reference; results are checked for
//! exact (IS/Gauss/SOR) or near-exact (NN) agreement in the test suite.

pub mod gauss;
pub mod is;
pub mod nn;
pub mod racy;
pub mod sor;
pub mod workload;

pub use vopp_core::RunStats;

/// Result of one application run: the paper's statistics plus the
/// application's verified output value.
pub struct AppOutcome<T> {
    /// Verification value (checksum / final loss).
    pub value: T,
    /// The statistics of the run (Tables 1/2/4/6/8 rows).
    pub stats: RunStats,
}
