//! Integer Sort (IS): bucket-sort key ranking (paper §3, §5.1).
//!
//! The benchmark ranks `n_keys` integer keys in `[0, bmax)` over `reps`
//! repetitions, accumulating a global histogram and finally ranking every
//! key against it.
//!
//! * **Traditional** (LRC_d): each processor owns a per-processor partial
//!   histogram row in one packed shared array — rows are not page-aligned,
//!   so neighbouring rows share pages (false sharing). Barriers inside the
//!   repetition loop separate the accumulate and read phases.
//! * **VOPP** (VC_d/VC_sd): one global histogram split into `chunks` views;
//!   every processor adds its local counts into every chunk under
//!   `acquire_view`. The standard variant keeps the same barriers as the
//!   traditional program; the **lb** variant hoists the barrier out of the
//!   loop (paper §3.2) — view exclusivity already orders the additions, so
//!   only the final ranking needs a barrier.

use vopp_core::prelude::*;

use crate::workload::{bounded, share};
use crate::AppOutcome;

/// IS problem description.
#[derive(Debug, Clone)]
pub struct IsParams {
    /// Total number of keys.
    pub n_keys: usize,
    /// Number of buckets (chosen so partial-histogram rows straddle pages).
    pub bmax: usize,
    /// Repetitions of the accumulate(+read) phase.
    pub reps: usize,
    /// Number of histogram chunk views in the VOPP version.
    pub chunks: usize,
    /// Workload seed.
    pub seed: u64,
}

impl IsParams {
    /// Small instance for tests.
    pub fn quick() -> IsParams {
        IsParams {
            n_keys: 1 << 12,
            bmax: 600,
            reps: 3,
            chunks: 8,
            seed: 0x15,
        }
    }

    /// The benchmark instance (scaled from the paper's problem size; see
    /// EXPERIMENTS.md).
    pub fn bench() -> IsParams {
        IsParams {
            n_keys: 1 << 23,
            bmax: 6000,
            reps: 40,
            chunks: 32,
            seed: 0x15,
        }
    }

    fn key(&self, i: usize) -> usize {
        bounded(self.seed, i as u64, self.bmax)
    }

    /// Local bucket counts for one processor's key share.
    fn local_counts(&self, me: usize, np: usize) -> Vec<u32> {
        let (ks, ke) = share(self.n_keys, me, np);
        let mut cnt = vec![0u32; self.bmax];
        for i in ks..ke {
            cnt[self.key(i)] += 1;
        }
        cnt
    }
}

/// Which program variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsVariant {
    /// Barrier-phased partial histograms (runs on LRC_d).
    Traditional,
    /// Chunk views, same barrier count as the traditional program.
    Vopp,
    /// Chunk views with the barrier hoisted out of the loop (§3.2).
    VoppLb,
}

/// Per-rep slice index read by `me` at repetition `rep`.
fn slice_of(me: usize, rep: usize, np: usize) -> usize {
    (me + rep) % np
}

/// A per-processor chunk-walk stride coprime to `chunks`, so every
/// processor visits all chunks in a distinct order.
fn coprime_stride(me: usize, chunks: usize) -> usize {
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let mut s = (2 * me + 1) % chunks.max(1);
    if s == 0 {
        s = 1;
    }
    while gcd(s, chunks) != 1 {
        s += 2;
        if s >= chunks {
            s = 1;
        }
    }
    s
}

/// Sequential reference checksum for `np` processors.
///
/// The checksum folds (a) per-repetition partial reads of the accumulated
/// histogram (skipped by the `lb` variant, whose loop has no barrier to
/// order them) and (b) the final ranking of every key.
pub fn is_reference(p: &IsParams, np: usize, lb: bool) -> u64 {
    let mut cnt_total = vec![0u64; p.bmax];
    for i in 0..p.n_keys {
        cnt_total[p.key(i)] += 1;
    }
    let mut cks = 0u64;
    if !lb {
        for rep in 0..p.reps {
            let mult = rep as u64 + 1;
            for q in 0..np {
                let (bs, be) = share(p.bmax, slice_of(q, rep, np), np);
                for cnt in &cnt_total[bs..be] {
                    cks = cks.wrapping_add(cnt * mult);
                }
            }
        }
    }
    // Final ranking against the fully accumulated histogram.
    let reps = p.reps as u64;
    let mut prefix = vec![0u64; p.bmax];
    let mut acc = 0u64;
    for (pref, cnt) in prefix.iter_mut().zip(&cnt_total) {
        *pref = acc;
        acc += cnt * reps;
    }
    for i in 0..p.n_keys {
        cks = cks.wrapping_add(prefix[p.key(i)]);
    }
    cks
}

/// Run IS on a simulated cluster.
pub fn run_is(cfg: &ClusterConfig, p: &IsParams, variant: IsVariant) -> AppOutcome<u64> {
    match variant {
        IsVariant::Traditional => {
            assert!(
                cfg.protocol.is_lrc_family(),
                "traditional IS runs on LRC_d/HLRC_d"
            );
            run_is_traditional(cfg, p)
        }
        IsVariant::Vopp | IsVariant::VoppLb => {
            assert!(cfg.protocol.is_vc(), "VOPP IS runs on VC_d / VC_sd");
            run_is_vopp(cfg, p, variant == IsVariant::VoppLb)
        }
    }
}

fn run_is_traditional(cfg: &ClusterConfig, p: &IsParams) -> AppOutcome<u64> {
    let np = cfg.nprocs;
    let mut world = WorldBuilder::new();
    // One packed array of per-processor rows: rows straddle page boundaries.
    let partials = world.alloc_u32(np * p.bmax);
    let layout = world.build();
    let p = p.clone();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        let (ks, ke) = share(p.n_keys, me, np);
        let nk = (ke - ks) as u64;
        let cnt = p.local_counts(me, np);
        let mut cks = 0u64;
        let my_row = me * p.bmax;
        let mut row = vec![0u32; p.bmax];
        for rep in 0..p.reps {
            // Count this processor's keys (identical every rep; the work is
            // charged every rep, as the original program recounts).
            ctx.int_ops(5 * nk);
            // Accumulate into my shared partial row.
            partials.read_into(ctx, my_row, &mut row);
            for (r, c) in row.iter_mut().zip(&cnt) {
                *r += c;
            }
            ctx.int_ops(p.bmax as u64);
            partials.write_at(ctx, my_row, &row);
            ctx.barrier();
            // Read my rotating slice of the accumulated histogram.
            let (bs, be) = share(p.bmax, slice_of(me, rep, np), np);
            let mut buf = vec![0u32; be - bs];
            for q in 0..np {
                partials.read_into(ctx, q * p.bmax + bs, &mut buf);
                for v in &buf {
                    cks = cks.wrapping_add(*v as u64);
                }
            }
            ctx.int_ops((np * (be - bs)) as u64);
            ctx.barrier();
        }
        // Final ranking: read every partial row, build the histogram.
        let mut hist = vec![0u64; p.bmax];
        for q in 0..np {
            partials.read_into(ctx, q * p.bmax, &mut row);
            for (h, v) in hist.iter_mut().zip(&row) {
                *h += *v as u64;
            }
        }
        ctx.int_ops((np * p.bmax) as u64);
        let mut prefix = vec![0u64; p.bmax];
        let mut acc = 0u64;
        for b in 0..p.bmax {
            prefix[b] = acc;
            acc += hist[b];
        }
        for i in ks..ke {
            cks = cks.wrapping_add(prefix[p.key(i)]);
        }
        ctx.int_ops(2 * nk + p.bmax as u64);
        cks
    });
    AppOutcome {
        value: out.results.iter().fold(0u64, |a, b| a.wrapping_add(*b)),
        stats: out.stats,
    }
}

fn run_is_vopp(cfg: &ClusterConfig, p: &IsParams, lb: bool) -> AppOutcome<u64> {
    let np = cfg.nprocs;
    let mut world = WorldBuilder::new();
    // The global histogram, split into chunk views.
    let chunk_views: Vec<_> = (0..p.chunks)
        .map(|c| {
            let (bs, be) = share(p.bmax, c, p.chunks);
            world.view_u32(be - bs)
        })
        .collect();
    let layout = world.build();
    let p = p.clone();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        let (ks, ke) = share(p.n_keys, me, np);
        let nk = (ke - ks) as u64;
        let cnt = p.local_counts(me, np);
        let mut cks = 0u64;
        for rep in 0..p.reps {
            ctx.int_ops(5 * nk);
            // Add local counts into every chunk. Each processor walks the
            // chunks with its own odd stride (coprime to any chunk count),
            // so processors never fall into a persistent convoy behind one
            // another — the "wise use of view primitives" of §3.6.
            let start = (me * p.chunks / np + rep) % p.chunks;
            let stride = coprime_stride(me, p.chunks);
            for k in 0..p.chunks {
                let c = (start + k * stride) % p.chunks;
                let (bs, be) = share(p.bmax, c, p.chunks);
                let cv = &chunk_views[c];
                ctx.with_view(cv, |r| {
                    let mut buf = vec![0u32; be - bs];
                    r.read_into(ctx, 0, &mut buf);
                    for (v, b) in buf.iter_mut().zip(bs..be) {
                        *v += cnt[b];
                    }
                    r.write_all(ctx, &buf);
                });
                ctx.int_ops((be - bs) as u64);
            }
            if !lb {
                ctx.barrier();
                // Read my rotating slice under read views.
                let (bs, be) = share(p.bmax, slice_of(me, rep, np), np);
                for (c, cv) in chunk_views.iter().enumerate() {
                    let (cs, ce) = share(p.bmax, c, p.chunks);
                    let lo = bs.max(cs);
                    let hi = be.min(ce);
                    if lo >= hi {
                        continue;
                    }
                    ctx.with_rview(cv, |r| {
                        let mut buf = vec![0u32; hi - lo];
                        r.read_into(ctx, lo - cs, &mut buf);
                        for v in &buf {
                            cks = cks.wrapping_add(*v as u64);
                        }
                    });
                }
                ctx.int_ops((be - bs) as u64);
                ctx.barrier();
            }
        }
        // Final ranking: read the whole histogram under read views.
        ctx.barrier();
        let mut hist = vec![0u64; p.bmax];
        for (c, cv) in chunk_views.iter().enumerate() {
            let (cs, ce) = share(p.bmax, c, p.chunks);
            ctx.with_rview(cv, |r| {
                let mut buf = vec![0u32; ce - cs];
                r.read_into(ctx, 0, &mut buf);
                for (b, v) in (cs..ce).zip(&buf) {
                    hist[b] = *v as u64;
                }
            });
        }
        ctx.int_ops(p.bmax as u64);
        let mut prefix = vec![0u64; p.bmax];
        let mut acc = 0u64;
        for b in 0..p.bmax {
            prefix[b] = acc;
            acc += hist[b];
        }
        for i in ks..ke {
            cks = cks.wrapping_add(prefix[p.key(i)]);
        }
        ctx.int_ops(2 * nk + p.bmax as u64);
        cks
    });
    AppOutcome {
        value: out.results.iter().fold(0u64, |a, b| a.wrapping_add(*b)),
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_deterministic() {
        let p = IsParams::quick();
        assert_eq!(is_reference(&p, 4, false), is_reference(&p, 4, false));
        // The rotated slices of all processors tile the whole histogram, so
        // the folded checksum is processor-count invariant.
        assert_eq!(is_reference(&p, 2, false), is_reference(&p, 4, false));
        assert_eq!(is_reference(&p, 2, true), is_reference(&p, 4, true));
        // The lb variant folds only the final ranking.
        assert_ne!(is_reference(&p, 4, false), is_reference(&p, 4, true));
    }

    #[test]
    fn traditional_matches_reference() {
        let p = IsParams::quick();
        let cfg = ClusterConfig::lossless(4, Protocol::LrcD);
        let out = run_is(&cfg, &p, IsVariant::Traditional);
        assert_eq!(out.value, is_reference(&p, 4, false));
    }

    #[test]
    fn vopp_matches_reference_on_both_vc() {
        let p = IsParams::quick();
        for proto in [Protocol::VcD, Protocol::VcSd] {
            let cfg = ClusterConfig::lossless(4, proto);
            let out = run_is(&cfg, &p, IsVariant::Vopp);
            assert_eq!(out.value, is_reference(&p, 4, false), "{proto}");
        }
    }

    #[test]
    fn vopp_lb_matches_lb_reference() {
        let p = IsParams::quick();
        let cfg = ClusterConfig::lossless(4, Protocol::VcSd);
        let out = run_is(&cfg, &p, IsVariant::VoppLb);
        assert_eq!(out.value, is_reference(&p, 4, true));
    }

    #[test]
    fn lb_uses_one_barrier() {
        let p = IsParams::quick();
        let cfg = ClusterConfig::lossless(2, Protocol::VcSd);
        let std = run_is(&cfg, &p, IsVariant::Vopp);
        let lb = run_is(&cfg, &p, IsVariant::VoppLb);
        assert_eq!(std.stats.barriers(), 2 * p.reps as u64 + 1);
        assert_eq!(lb.stats.barriers(), 1);
        assert!(
            lb.stats.time < std.stats.time,
            "hoisting the barrier must not slow IS down"
        );
    }

    #[test]
    fn traditional_has_zero_acquires() {
        // Table 1: the traditional IS is barrier-only.
        let p = IsParams::quick();
        let cfg = ClusterConfig::lossless(4, Protocol::LrcD);
        let out = run_is(&cfg, &p, IsVariant::Traditional);
        assert_eq!(out.stats.acquires(), 0);
        assert!(
            out.stats.diff_requests() > 0,
            "false sharing must cause diff requests"
        );
    }

    #[test]
    fn vopp_acquire_count_formula() {
        // reps * chunks write-acquires per proc + per-rep slice rviews +
        // final chunk rviews.
        let p = IsParams::quick();
        let np = 4;
        let cfg = ClusterConfig::lossless(np, Protocol::VcSd);
        let out = run_is(&cfg, &p, IsVariant::Vopp);
        let writes = (p.reps * np * p.chunks) as u64;
        let final_reads = (np * p.chunks) as u64;
        assert!(out.stats.acquires() >= writes + final_reads);
        let lbout = run_is(&cfg, &p, IsVariant::VoppLb);
        assert_eq!(lbout.stats.acquires(), writes + final_reads);
    }

    #[test]
    fn single_proc_runs() {
        let p = IsParams::quick();
        let out = run_is(
            &ClusterConfig::lossless(1, Protocol::VcSd),
            &p,
            IsVariant::Vopp,
        );
        assert_eq!(out.value, is_reference(&p, 1, false));
    }
}
