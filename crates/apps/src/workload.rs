//! Deterministic workload generation.
//!
//! Every node generates exactly the same inputs from a seed and an index, so
//! no input distribution traffic is needed and every run is reproducible.

/// SplitMix64 hash of a (seed, index) pair — the basis of all generators.
#[inline]
pub fn mix64(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform `f64` in `[0, 1)` from a (seed, index) pair.
#[inline]
pub fn unit_f64(seed: u64, index: u64) -> f64 {
    (mix64(seed, index) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)`.
#[inline]
pub fn bounded(seed: u64, index: u64, bound: usize) -> usize {
    (mix64(seed, index) % bound as u64) as usize
}

/// The contiguous share of `total` items owned by `who` of `n` workers:
/// `[start, end)`. Remainders go to the lowest ranks, sizes differ by at
/// most one.
pub fn share(total: usize, who: usize, n: usize) -> (usize, usize) {
    let base = total / n;
    let extra = total % n;
    let start = who * base + who.min(extra);
    let len = base + usize::from(who < extra);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spread() {
        assert_eq!(mix64(1, 2), mix64(1, 2));
        assert_ne!(mix64(1, 2), mix64(1, 3));
        assert_ne!(mix64(1, 2), mix64(2, 2));
    }

    #[test]
    fn unit_in_range() {
        for i in 0..1000 {
            let v = unit_f64(7, i);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_in_range() {
        for i in 0..1000 {
            assert!(bounded(3, i, 17) < 17);
        }
    }

    #[test]
    fn shares_partition_exactly() {
        for total in [0usize, 1, 7, 64, 65, 1000] {
            for n in [1usize, 2, 3, 16, 24] {
                let mut covered = 0;
                let mut prev_end = 0;
                for w in 0..n {
                    let (s, e) = share(total, w, n);
                    assert_eq!(s, prev_end);
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, total);
                assert_eq!(prev_end, total);
            }
        }
    }

    #[test]
    fn share_sizes_balanced() {
        let sizes: Vec<usize> = (0..5)
            .map(|w| {
                let (s, e) = share(13, w, 5);
                e - s
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 13);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }
}
