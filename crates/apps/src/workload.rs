//! Deterministic workload generation.
//!
//! Every node generates exactly the same inputs from a seed and an index, so
//! no input distribution traffic is needed and every run is reproducible.
//!
//! The service-workload generators (Zipfian ranks, exponential
//! interarrivals, diurnal envelope) need `ln`/`exp`/`pow`/`sin`, but the
//! platform's libm is not bit-stable across targets and these values feed
//! virtual time, which committed baselines compare byte-exactly. So the
//! transcendentals here ([`det_ln`], [`det_exp`], [`det_pow`],
//! [`det_sin_turns`]) are built from nothing but IEEE-754 basic operations
//! (`+ - * /`, `floor`, bit casts), which round identically on every
//! conforming platform.

use std::f64::consts::{LN_2, SQRT_2};

/// SplitMix64 hash of a (seed, index) pair — the basis of all generators.
#[inline]
pub fn mix64(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform `f64` in `[0, 1)` from a (seed, index) pair.
#[inline]
pub fn unit_f64(seed: u64, index: u64) -> f64 {
    (mix64(seed, index) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)`.
#[inline]
pub fn bounded(seed: u64, index: u64, bound: usize) -> usize {
    (mix64(seed, index) % bound as u64) as usize
}

/// The contiguous share of `total` items owned by `who` of `n` workers:
/// `[start, end)`. Remainders go to the lowest ranks, sizes differ by at
/// most one.
pub fn share(total: usize, who: usize, n: usize) -> (usize, usize) {
    let base = total / n;
    let extra = total % n;
    let start = who * base + who.min(extra);
    let len = base + usize::from(who < extra);
    (start, start + len)
}

/// `2^k` as an `f64` by direct exponent construction (no libm).
fn pow2i(k: i64) -> f64 {
    if k > 1023 {
        f64::INFINITY
    } else if k >= -1022 {
        f64::from_bits(((k + 1023) as u64) << 52)
    } else if k >= -1074 {
        // Subnormal range: a single mantissa bit.
        f64::from_bits(1u64 << (k + 1074))
    } else {
        0.0
    }
}

/// Deterministic natural logarithm of a finite `x > 0`.
///
/// Splits `x = m · 2^e` with `m ∈ [√2/2, √2)`, then evaluates
/// `ln m = 2·atanh(t)` with `t = (m−1)/(m+1)` (|t| < 0.172) as a fixed-length
/// odd power series. Matches the platform `ln` to ~1 ulp but uses only
/// exactly-rounded basic operations, so the bits are identical everywhere.
pub fn det_ln(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite(), "det_ln domain: 0 < x < inf");
    // Lift subnormals into the normal range: ln(x) = ln(x·2^53) − 53·ln 2.
    let (x, pre) = if x < f64::MIN_POSITIVE {
        (x * pow2i(53), -53.0 * LN_2)
    } else {
        (x, 0.0)
    };
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    if m > SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // atanh series through t^27: next term < 0.172^29/29 ≈ 2e-24.
    let mut sum = 0.0;
    let mut n = 27i32;
    while n >= 1 {
        sum = sum * t2 + 1.0 / n as f64;
        n -= 2;
    }
    2.0 * t * sum + e as f64 * LN_2 + pre
}

/// Deterministic `e^x` for finite `x`, by range reduction to
/// `x = k·ln 2 + r` (|r| ≤ ln 2 / 2) and a fixed-length Taylor series on `r`.
pub fn det_exp(x: f64) -> f64 {
    assert!(x.is_finite(), "det_exp domain: finite x");
    if x < -745.2 {
        return 0.0;
    }
    if x > 709.8 {
        return f64::INFINITY;
    }
    let k = (x / LN_2 + 0.5).floor();
    let r = x - k * LN_2;
    // Taylor through r^17: 0.347^17/17! ≈ 6e-23.
    let mut term = 1.0;
    let mut sum = 1.0;
    for n in 1..=17 {
        term *= r / n as f64;
        sum += term;
    }
    sum * pow2i(k as i64)
}

/// Deterministic `x^y` for `x > 0`.
pub fn det_pow(x: f64, y: f64) -> f64 {
    det_exp(y * det_ln(x))
}

/// Deterministic sine of `2π·u` (`u` in turns), by the Bhaskara I rational
/// approximation on each half-period. Max absolute error ≈ 0.0016 — the
/// diurnal envelope is a load *shape*, not a numeric result, so a smooth
/// deterministic sine-alike is exactly what is needed.
pub fn det_sin_turns(u: f64) -> f64 {
    assert!((0.0..1.0).contains(&u), "det_sin_turns domain: u in [0,1)");
    let (u, sign) = if u < 0.5 { (u, 1.0) } else { (u - 0.5, -1.0) };
    let x = 2.0 * u; // θ/π in [0,1]
    let g = x * (1.0 - x);
    sign * 16.0 * g / (5.0 - 4.0 * g)
}

/// Deterministic Zipfian sampler over ranks `0..n` with exponent `s`:
/// `P(rank = i) ∝ (i+1)^(−s)`. Built once (O(n)), sampled by binary search
/// on the precomputed CDF. `s = 0` degenerates to uniform; the serving
/// workload's default `s ≈ 0.99` is the classic YCSB-style skew where a few
/// hot shards absorb most of the traffic.
#[derive(Debug, Clone)]
pub struct Zipfian {
    cdf: Vec<f64>,
}

impl Zipfian {
    /// Precompute the CDF for `n` ranks with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Zipfian {
        assert!(n > 0, "zipfian needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "zipfian exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += det_pow((i + 1) as f64, -s);
            cdf.push(total);
        }
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Guard the top against rounding: sample() must never fall off the end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipfian { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank (never empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Map a uniform `u ∈ [0, 1)` to a rank by CDF inversion.
    pub fn sample(&self, u: f64) -> usize {
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Convenience: rank for a `(seed, index)` pair.
    pub fn rank(&self, seed: u64, index: u64) -> usize {
        self.sample(unit_f64(seed, index))
    }
}

/// Exponentially distributed interarrival gap (ns) with the given mean, by
/// CDF inversion of the `(seed, index)` uniform: `−ln(1−u)·mean`.
pub fn exp_gap_ns(seed: u64, index: u64, mean_ns: f64) -> u64 {
    assert!(mean_ns >= 0.0 && mean_ns.is_finite());
    let u = unit_f64(seed, index); // [0, 1), so 1−u ∈ (0, 1] and the ln is finite
    (-det_ln(1.0 - u) * mean_ns) as u64
}

/// Diurnal load envelope: the instantaneous arrival-rate multiplier at `t`,
/// `1 + amp·sin(2π·t/period)`. `amp ∈ [0, 1)` keeps the rate positive;
/// open-loop generators divide gaps by this factor, compressing arrivals at
/// the daily peak and stretching them in the trough.
pub fn diurnal_factor(t_ns: u64, period_ns: u64, amp: f64) -> f64 {
    assert!(period_ns > 0, "diurnal period must be positive");
    assert!(
        (0.0..1.0).contains(&amp),
        "diurnal amplitude must be in [0,1)"
    );
    let phase = (t_ns % period_ns) as f64 / period_ns as f64;
    1.0 + amp * det_sin_turns(phase)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spread() {
        assert_eq!(mix64(1, 2), mix64(1, 2));
        assert_ne!(mix64(1, 2), mix64(1, 3));
        assert_ne!(mix64(1, 2), mix64(2, 2));
    }

    #[test]
    fn unit_in_range() {
        for i in 0..1000 {
            let v = unit_f64(7, i);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_in_range() {
        for i in 0..1000 {
            assert!(bounded(3, i, 17) < 17);
        }
    }

    #[test]
    fn shares_partition_exactly() {
        for total in [0usize, 1, 7, 64, 65, 1000] {
            for n in [1usize, 2, 3, 16, 24] {
                let mut covered = 0;
                let mut prev_end = 0;
                for w in 0..n {
                    let (s, e) = share(total, w, n);
                    assert_eq!(s, prev_end);
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, total);
                assert_eq!(prev_end, total);
            }
        }
    }

    /// Exact bit patterns from fixed seeds. These values ARE the contract:
    /// they feed virtual time, and committed baselines compare byte-exactly
    /// across machines, so any drift here is a determinism break, not a
    /// tolerance question.
    #[test]
    fn known_answer_bit_patterns() {
        assert_eq!(det_ln(2.0).to_bits(), 0x3fe62e42fefa39ef); // == LN_2 exactly
        assert_eq!(det_ln(10.0).to_bits(), 0x40026bb1bbb55515);
        assert_eq!(det_ln(0.3).to_bits(), 0xbff34378fcbda720);
        assert_eq!(det_exp(1.0).to_bits(), 0x4005bf0a8b145768);
        assert_eq!(det_exp(-4.2).to_bits(), 0x3f8eb600403a9681);
        assert_eq!(det_pow(7.0, -0.99).to_bits(), 0x3fc2a520308bb814);
        assert_eq!(det_sin_turns(0.125).to_bits(), 0x3fe6969696969697);
        // Bhaskara is exact at the quarter-period peaks: 1 ± amp.
        assert_eq!(diurnal_factor(0, 1000, 0.5).to_bits(), 1.0f64.to_bits());
        assert_eq!(diurnal_factor(250, 1000, 0.5).to_bits(), 1.5f64.to_bits());
        assert_eq!(diurnal_factor(750, 1000, 0.5).to_bits(), 0.5f64.to_bits());
    }

    #[test]
    fn known_answer_samplers() {
        let z = Zipfian::new(64, 0.99);
        let ranks: Vec<usize> = (0..16).map(|i| z.rank(42, i)).collect();
        assert_eq!(ranks, [18, 0, 1, 2, 0, 34, 1, 24, 2, 10, 0, 5, 6, 6, 12, 0]);
        let gaps: Vec<u64> = (0..8).map(|i| exp_gap_ns(42, i, 1_000_000.0)).collect();
        assert_eq!(
            gaps,
            [1353110, 174246, 326563, 421885, 38772, 2026682, 246418, 1612602]
        );
    }

    #[test]
    fn det_ln_matches_std_to_a_few_ulp() {
        for i in 1..4000u64 {
            let x = i as f64 * 0.25;
            let got = det_ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= want.abs().max(1e-300) * 1e-14 + 1e-16,
                "ln({x}): {got} vs {want}"
            );
        }
        assert_eq!(det_ln(1.0), 0.0);
    }

    #[test]
    fn det_exp_matches_std_to_a_few_ulp() {
        for i in -600..600i64 {
            let x = i as f64 * 0.1;
            let got = det_exp(x);
            let want = x.exp();
            assert!(
                (got - want).abs() <= want * 1e-14,
                "exp({x}): {got} vs {want}"
            );
        }
        assert_eq!(det_exp(0.0), 1.0);
    }

    #[test]
    fn det_exp_ln_round_trip() {
        for i in 1..1000u64 {
            let x = i as f64 * 0.01;
            let rt = det_exp(det_ln(x));
            assert!((rt - x).abs() <= x * 1e-13, "round trip {x} -> {rt}");
        }
    }

    #[test]
    fn det_pow_known_cases() {
        assert!((det_pow(2.0, 10.0) - 1024.0).abs() < 1e-10);
        assert!((det_pow(9.0, 0.5) - 3.0).abs() < 1e-13);
        assert_eq!(det_pow(5.0, 0.0), 1.0);
    }

    #[test]
    fn det_sin_shape() {
        assert_eq!(det_sin_turns(0.0), 0.0);
        assert_eq!(det_sin_turns(0.5), 0.0);
        assert!((det_sin_turns(0.25) - 1.0).abs() < 2e-3);
        assert!((det_sin_turns(0.75) + 1.0).abs() < 2e-3);
        // Odd symmetry across the half-period (approximate: `u + 0.5` is
        // not exactly representable for every u) and bounded amplitude.
        for i in 0..500 {
            let u = i as f64 / 1000.0;
            let s = det_sin_turns(u);
            assert!((-1.0..=1.0).contains(&s));
            assert!((det_sin_turns(u + 0.5) + s).abs() < 1e-11);
        }
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipfian::new(100, 0.99);
        assert_eq!(z.len(), 100);
        let mut counts = vec![0u64; 100];
        for i in 0..200_000 {
            counts[z.rank(7, i)] += 1;
        }
        // Rank 0 is the hottest and the head dominates the tail.
        assert!(counts[0] > counts[1] && counts[1] > counts[3]);
        let head: u64 = counts[..10].iter().sum();
        let tail: u64 = counts[90..].iter().sum();
        assert!(
            head > 20 * tail,
            "zipf head {head} should dwarf tail {tail}"
        );
        // s = 0 degenerates to uniform: top rank near 1/n, not dominant.
        let u = Zipfian::new(100, 0.0);
        let mut c0 = 0u64;
        for i in 0..200_000 {
            if u.rank(7, i) == 0 {
                c0 += 1;
            }
        }
        assert!((1000..3000).contains(&c0), "uniform rank-0 count {c0}");
    }

    #[test]
    fn zipf_cdf_extremes_stay_in_bounds() {
        let z = Zipfian::new(3, 1.2);
        assert_eq!(z.sample(0.0), 0);
        // u can approach 1.0 from below without indexing off the end.
        assert_eq!(z.sample(1.0 - 1e-16), 2);
    }

    #[test]
    fn exp_gaps_have_the_right_mean() {
        let mean = 2_000_000.0;
        let n = 100_000u64;
        let total: u64 = (0..n).map(|i| exp_gap_ns(11, i, mean)).sum();
        let got = total as f64 / n as f64;
        assert!(
            (got - mean).abs() < mean * 0.02,
            "sample mean {got} vs {mean}"
        );
        // And spread: an exponential has plenty of mass beyond 2x the mean.
        let slow = (0..n)
            .filter(|&i| exp_gap_ns(11, i, mean) as f64 > 2.0 * mean)
            .count();
        assert!((8_000..20_000).contains(&slow), "tail count {slow}");
    }

    #[test]
    fn diurnal_factor_bounds_and_period() {
        let period = 3_600_000_000_000u64;
        for i in 0..1000u64 {
            let f = diurnal_factor(i * period / 1000, period, 0.8);
            assert!((0.2 - 1e-9..=1.8 + 1e-9).contains(&f), "factor {f}");
        }
        assert_eq!(
            diurnal_factor(123, period, 0.8),
            diurnal_factor(123 + 2 * period, period, 0.8)
        );
        assert_eq!(diurnal_factor(0, period, 0.0), 1.0);
    }

    #[test]
    fn share_sizes_balanced() {
        let sizes: Vec<usize> = (0..5)
            .map(|w| {
                let (s, e) = share(13, w, 5);
                e - s
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 13);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }
}
