//! SOR: iterative grid relaxation with border exchange (paper §3.3, §5.3).
//!
//! A 2-D grid is relaxed with a 5-point Jacobi stencil for `iters`
//! iterations; the grid's outer frame is a fixed boundary condition.
//! Row blocks are distributed over processors; each iteration needs the
//! neighbouring blocks' edge rows.
//!
//! * **Traditional** (LRC_d): the whole grid (two ping-pong copies) lives in
//!   shared memory. Column counts are chosen so block boundaries fall inside
//!   pages: the pages holding edge rows have two writers (false sharing),
//!   and every iteration's barrier carries the consistency load of a whole
//!   block of dirty pages per processor.
//! * **VOPP**: blocks live in local buffers (paper §3.1); only the edge
//!   rows are shared, through dedicated border views (§3.3), ping-ponged by
//!   iteration parity. At the end each block is published once through a
//!   result view so processor 0 can assemble the answer — the paper's
//!   "read and print the whole matrix" epilogue.

use vopp_core::prelude::*;

use crate::workload::{share, unit_f64};
use crate::AppOutcome;

/// SOR problem description.
#[derive(Debug, Clone)]
pub struct SorParams {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns (sized so rows are a fraction of a page).
    pub cols: usize,
    /// Jacobi iterations.
    pub iters: usize,
    /// Workload seed.
    pub seed: u64,
}

impl SorParams {
    /// Small instance for tests.
    pub fn quick() -> SorParams {
        SorParams {
            rows: 40,
            cols: 24,
            iters: 5,
            seed: 0x50,
        }
    }

    /// The benchmark instance (scaled from the paper; see EXPERIMENTS.md).
    pub fn bench() -> SorParams {
        SorParams {
            rows: 2048,
            cols: 256,
            iters: 50,
            seed: 0x50,
        }
    }

    /// Initial grid value at `(i, j)`.
    #[inline]
    pub fn g0(&self, i: usize, j: usize) -> f64 {
        unit_f64(self.seed, (i * self.cols + j) as u64)
    }

    /// Checksum weight.
    #[inline]
    fn w(&self, idx: usize) -> f64 {
        unit_f64(self.seed ^ 0xD00D, idx as u64)
    }

    /// Initial rows `[rs, re)` as a dense row-major block.
    pub fn init_rows(&self, rs: usize, re: usize) -> Vec<f64> {
        let mut g = Vec::with_capacity((re - rs) * self.cols);
        for i in rs..re {
            for j in 0..self.cols {
                g.push(self.g0(i, j));
            }
        }
        g
    }
}

/// Relax one interior row: `up`, `mid`, `down` are rows `i-1`, `i`, `i+1`
/// of the current grid; boundary columns are copied through. Shared by the
/// reference and both parallel versions for bit-exact agreement.
#[inline]
pub fn relax_row(up: &[f64], mid: &[f64], down: &[f64], out: &mut [f64]) {
    let c = mid.len();
    out[0] = mid[0];
    out[c - 1] = mid[c - 1];
    for j in 1..c - 1 {
        out[j] = 0.25 * (up[j] + down[j] + mid[j - 1] + mid[j + 1]);
    }
}

fn checksum(p: &SorParams, grid: &[f64]) -> f64 {
    grid.iter().enumerate().map(|(i, v)| v * p.w(i)).sum()
}

/// Sequential reference: checksum of the final grid.
pub fn sor_reference(p: &SorParams) -> f64 {
    let c = p.cols;
    let mut cur = p.init_rows(0, p.rows);
    let mut next = cur.clone();
    for _ in 0..p.iters {
        for i in 1..p.rows - 1 {
            let (up, rest) = cur[(i - 1) * c..].split_at(c);
            let (mid, down) = rest.split_at(c);
            let mut out = vec![0.0; c];
            relax_row(up, mid, &down[..c], &mut out);
            next[i * c..(i + 1) * c].copy_from_slice(&out);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    checksum(p, &cur)
}

/// Which program variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SorVariant {
    /// Whole grid in shared memory (LRC_d).
    Traditional,
    /// Local blocks + border views (VC_d / VC_sd).
    Vopp,
}

/// Run SOR on a simulated cluster. Returns proc 0's checksum of the final
/// grid.
pub fn run_sor(cfg: &ClusterConfig, p: &SorParams, variant: SorVariant) -> AppOutcome<f64> {
    match variant {
        SorVariant::Traditional => {
            assert!(cfg.protocol.is_lrc_family());
            run_sor_traditional(cfg, p)
        }
        SorVariant::Vopp => {
            assert!(cfg.protocol.is_vc());
            run_sor_vopp(cfg, p)
        }
    }
}

/// Relax this block's interior rows. `blk` holds rows `[rs, re)`; halo rows
/// are the rows just outside the block (empty slices at the global edges).
#[allow(clippy::too_many_arguments)]
fn relax_block(
    p: &SorParams,
    rs: usize,
    re: usize,
    blk: &[f64],
    halo_top: &[f64],
    halo_bot: &[f64],
    next: &mut [f64],
) {
    let c = p.cols;
    for i in rs..re {
        let li = i - rs;
        let out_range = li * c..(li + 1) * c;
        if i == 0 || i == p.rows - 1 {
            // Fixed boundary rows keep their values.
            next[out_range.clone()].copy_from_slice(&blk[out_range]);
            continue;
        }
        let up: &[f64] = if li == 0 {
            halo_top
        } else {
            &blk[(li - 1) * c..li * c]
        };
        let down: &[f64] = if i + 1 == re {
            halo_bot
        } else {
            &blk[(li + 1) * c..(li + 2) * c]
        };
        let mid = &blk[li * c..(li + 1) * c];
        let mut out = vec![0.0; c];
        relax_row(up, mid, down, &mut out);
        next[out_range].copy_from_slice(&out);
    }
}

fn run_sor_traditional(cfg: &ClusterConfig, p: &SorParams) -> AppOutcome<f64> {
    let np = cfg.nprocs;
    let c = p.cols;
    let mut world = WorldBuilder::new();
    let ga = world.alloc_f64(p.rows * c);
    let gb = world.alloc_f64(p.rows * c);
    let layout = world.build();
    let p = p.clone();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        let (rs, re) = share(p.rows, me, np);
        let rows = re - rs;
        // Initialize both ping-pong grids over my rows.
        let init = p.init_rows(rs, re);
        ga.write_at(ctx, rs * c, &init);
        gb.write_at(ctx, rs * c, &init);
        ctx.barrier();
        let mut blk = vec![0.0; rows * c];
        let mut next = vec![0.0; rows * c];
        let mut halo_top = vec![0.0; if rs > 0 { c } else { 0 }];
        let mut halo_bot = vec![0.0; if re < p.rows { c } else { 0 }];
        for it in 0..p.iters {
            let (src, dst) = if it % 2 == 0 { (&ga, &gb) } else { (&gb, &ga) };
            // Read my block and the halo rows from shared memory; the halo
            // pages were written by neighbours (diff fetches, false sharing).
            src.read_into(ctx, rs * c, &mut blk);
            if rs > 0 {
                src.read_into(ctx, (rs - 1) * c, &mut halo_top);
            }
            if re < p.rows {
                src.read_into(ctx, re * c, &mut halo_bot);
            }
            relax_block(&p, rs, re, &blk, &halo_top, &halo_bot, &mut next);
            ctx.flops((4 * rows * c) as u64);
            dst.write_at(ctx, rs * c, &next);
            ctx.barrier();
        }
        if me == 0 {
            let fin = if p.iters.is_multiple_of(2) { &ga } else { &gb };
            let mut g = vec![0.0; p.rows * c];
            fin.read_into(ctx, 0, &mut g);
            checksum(&p, &g)
        } else {
            0.0
        }
    });
    AppOutcome {
        value: out.results[0],
        stats: out.stats,
    }
}

fn run_sor_vopp(cfg: &ClusterConfig, p: &SorParams) -> AppOutcome<f64> {
    let np = cfg.nprocs;
    let c = p.cols;
    let mut world = WorldBuilder::new();
    // Border views: [parity][proc] for top and bottom edge rows.
    let top: Vec<Vec<ViewRegion<f64>>> = (0..2).map(|_| world.views_f64(np, c)).collect();
    let bot: Vec<Vec<ViewRegion<f64>>> = (0..2).map(|_| world.views_f64(np, c)).collect();
    // Result views for the final gather.
    let result: Vec<ViewRegion<f64>> = (0..np)
        .map(|q| {
            let (qs, qe) = share(p.rows, q, np);
            world.view_f64((qe - qs) * c)
        })
        .collect();
    let layout = world.build();
    let p = p.clone();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        let (rs, re) = share(p.rows, me, np);
        let rows = re - rs;
        // The grid block lives in a local buffer (paper §3.1).
        let mut blk = p.init_rows(rs, re);
        ctx.copy_cost((rows * c * 8) as u64);
        let mut next = vec![0.0; rows * c];
        // Publish initial edges into the parity-0 border views.
        ctx.with_view(&top[0][me], |r| r.write_all(ctx, &blk[..c]));
        ctx.with_view(&bot[0][me], |r| r.write_all(ctx, &blk[(rows - 1) * c..]));
        ctx.barrier();
        let mut halo_top = vec![0.0; if rs > 0 { c } else { 0 }];
        let mut halo_bot = vec![0.0; if re < p.rows { c } else { 0 }];
        for it in 0..p.iters {
            let par = it % 2;
            // Read neighbours' edge rows of the current iterate.
            if rs > 0 {
                ctx.with_rview(&bot[par][me - 1], |r| r.read_into(ctx, 0, &mut halo_top));
            }
            if re < p.rows {
                ctx.with_rview(&top[par][me + 1], |r| r.read_into(ctx, 0, &mut halo_bot));
            }
            relax_block(&p, rs, re, &blk, &halo_top, &halo_bot, &mut next);
            ctx.flops((4 * rows * c) as u64);
            std::mem::swap(&mut blk, &mut next);
            // Publish my new edges for the next iteration's parity.
            let np_par = (it + 1) % 2;
            ctx.with_view(&top[np_par][me], |r| r.write_all(ctx, &blk[..c]));
            ctx.with_view(&bot[np_par][me], |r| {
                r.write_all(ctx, &blk[(rows - 1) * c..])
            });
            ctx.barrier();
        }
        // Publish the final block; proc 0 gathers and checksums.
        ctx.with_view(&result[me], |r| r.write_all(ctx, &blk));
        ctx.barrier();
        if me == 0 {
            let mut g = vec![0.0; p.rows * c];
            for (q, res) in result.iter().enumerate() {
                let (qs, qe) = share(p.rows, q, np);
                ctx.with_rview(res, |r| {
                    r.read_into(ctx, 0, &mut g[qs * c..qe * c]);
                });
            }
            checksum(&p, &g)
        } else {
            0.0
        }
    });
    AppOutcome {
        value: out.results[0],
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_smooth() {
        // After many iterations interior values head towards the mean of
        // their neighbours; sanity: no NaNs and values stay in [0, 1].
        let p = SorParams {
            iters: 50,
            ..SorParams::quick()
        };
        let mut cur = p.init_rows(0, p.rows);
        let mut next = cur.clone();
        for _ in 0..p.iters {
            let c = p.cols;
            for i in 1..p.rows - 1 {
                let up = cur[(i - 1) * c..i * c].to_vec();
                let mid = cur[i * c..(i + 1) * c].to_vec();
                let down = cur[(i + 1) * c..(i + 2) * c].to_vec();
                let mut out = vec![0.0; c];
                relax_row(&up, &mid, &down, &mut out);
                next[i * c..(i + 1) * c].copy_from_slice(&out);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        assert!(cur.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
    }

    #[test]
    fn traditional_matches_reference_exactly() {
        let p = SorParams::quick();
        let cfg = ClusterConfig::lossless(4, Protocol::LrcD);
        let out = run_sor(&cfg, &p, SorVariant::Traditional);
        assert_eq!(out.value, sor_reference(&p));
    }

    #[test]
    fn vopp_matches_reference_exactly() {
        let p = SorParams::quick();
        for proto in [Protocol::VcD, Protocol::VcSd] {
            for np in [1, 3, 4] {
                let cfg = ClusterConfig::lossless(np, proto);
                let out = run_sor(&cfg, &p, SorVariant::Vopp);
                assert_eq!(out.value, sor_reference(&p), "{proto} np={np}");
            }
        }
    }

    #[test]
    fn vopp_moves_far_less_data() {
        let p = SorParams {
            rows: 64,
            cols: 32,
            iters: 8,
            seed: 1,
        };
        let tr = run_sor(
            &ClusterConfig::lossless(4, Protocol::LrcD),
            &p,
            SorVariant::Traditional,
        );
        let vc = run_sor(
            &ClusterConfig::lossless(4, Protocol::VcSd),
            &p,
            SorVariant::Vopp,
        );
        // Border views move only edge rows; the traditional version's
        // false sharing moves whole pages (Table 6's Data row shape).
        assert!(
            vc.stats.data_mbytes() < tr.stats.data_mbytes(),
            "vopp {} MB vs traditional {} MB",
            vc.stats.data_mbytes(),
            tr.stats.data_mbytes()
        );
    }
}
