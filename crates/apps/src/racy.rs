//! Seeded-racy application variants: known-answer workloads for the
//! `vopp-racecheck` dynamic checker (see `docs/CORRECTNESS.md`).
//!
//! Each variant runs a normally-disciplined kernel with a small number of
//! deliberate violations injected at fixed program points, so a checker
//! attached via `ClusterConfig::racecheck` reports an exact, deterministic
//! count:
//!
//! * [`run_is_racy`] — traditional (barrier-phased) IS sharing pattern where
//!   every processor additionally pokes one word of its neighbour's
//!   partial-histogram row before the first barrier. A happens-before
//!   checker reports exactly [`is_racy_expected`]`(np)` data races.
//! * [`run_sor_racy`] — a VOPP border-exchange (SOR-flavoured) kernel where
//!   node 0 breaks each view-discipline rule exactly once. A view-discipline
//!   checker reports exactly [`sor_racy_expected`]`()` violations.
//!
//! The programs stay deterministic with or without a checker: checking is
//! pure observation, and undisciplined writes are reverted by the DSM layer
//! before the protocol can observe them.

use vopp_core::{prelude::*, RacecheckMode};

use crate::workload::share;
use crate::AppOutcome;

/// Distinct data races reported for [`run_is_racy`] on `np >= 2`
/// processors: each processor's poke of its neighbour's row start is
/// unordered with the neighbour's same-phase read (one race) and write (one
/// race) of its own row.
pub fn is_racy_expected(np: usize) -> usize {
    2 * np
}

/// Traditional (lock/barrier) IS sharing pattern with one seeded data race
/// per processor.
///
/// The kernel is the barrier-phased partial-histogram exchange of
/// [`crate::is`], shrunk to its sharing structure: each repetition
/// accumulates synthetic counts into the processor's own packed row, then
/// reads a rotating slice of every row after a barrier. In the first
/// repetition each processor additionally writes the first word of its
/// *neighbour's* row before the barrier — unordered with the neighbour's
/// own read and write of that word in the same phase.
///
/// Runs with or without a checker attached; races are benign for
/// termination (the poked word merely corrupts the histogram).
pub fn run_is_racy(cfg: &ClusterConfig, bmax: usize, reps: usize) -> AppOutcome<u64> {
    assert!(
        cfg.protocol.is_lrc_family(),
        "traditional IS runs on the LRC family"
    );
    assert!(cfg.nprocs >= 2, "the seeded race needs a neighbour");
    let np = cfg.nprocs;
    let mut world = WorldBuilder::new();
    // One packed array of per-processor rows (rows straddle pages: the
    // usual false sharing, which word-precise checking must NOT flag).
    let partials = world.alloc_u32(np * bmax);
    let layout = world.build();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        let my_row = me * bmax;
        let mut row = vec![0u32; bmax];
        let mut cks = 0u64;
        for rep in 0..reps {
            // Accumulate a synthetic count into my shared row.
            partials.read_into(ctx, my_row, &mut row);
            for (b, r) in row.iter_mut().enumerate() {
                *r += (b as u32 % 7) + 1;
            }
            partials.write_at(ctx, my_row, &row);
            if rep == 0 {
                // SEEDED RACE: poke the first word of the neighbour's row
                // on the wrong side of the barrier.
                partials.set(ctx, ((me + 1) % np) * bmax, 1);
            }
            ctx.int_ops(bmax as u64);
            ctx.barrier();
            // Read my rotating slice of the accumulated histogram.
            let (bs, be) = share(bmax, (me + rep) % np, np);
            let mut buf = vec![0u32; be - bs];
            for q in 0..np {
                partials.read_into(ctx, q * bmax + bs, &mut buf);
                for v in &buf {
                    cks = cks.wrapping_add(*v as u64);
                }
            }
            ctx.int_ops((np * (be - bs)) as u64);
            ctx.barrier();
        }
        cks
    });
    AppOutcome {
        value: out.results.iter().fold(0u64, |a, b| a.wrapping_add(*b)),
        stats: out.stats,
    }
}

/// Distinct view-discipline violations reported for [`run_sor_racy`]: node
/// 0 breaks each of the four rules (`outside_views`, `unbracketed`,
/// `foreign_view`, `read_only_write`) exactly once.
pub fn sor_racy_expected() -> usize {
    4
}

/// VOPP border-exchange (SOR-flavoured) kernel with node 0 breaking every
/// view-discipline rule exactly once before the disciplined sweeps start.
///
/// Requires a [`vopp_core::RaceChecker`] in view-discipline mode attached
/// to `cfg`: without one the runtime enforces the discipline by panicking
/// on the first seeded violation.
pub fn run_sor_racy(cfg: &ClusterConfig, n: usize, sweeps: usize) -> AppOutcome<f64> {
    assert!(cfg.protocol.is_vc(), "VOPP programs run on VC protocols");
    assert!(
        cfg.nprocs >= 2,
        "the foreign-view violation needs a second view"
    );
    assert!(
        cfg.racecheck
            .as_ref()
            .is_some_and(|rc| rc.mode() == RacecheckMode::ViewDiscipline),
        "run_sor_racy needs a view-discipline checker attached \
         (the seeded violations would otherwise panic)"
    );
    let np = cfg.nprocs;
    let mut world = WorldBuilder::new();
    // A plain allocation: shared data outside every view.
    let scratch = world.alloc_f64(8);
    // One border view per processor, exchanged ring-wise each sweep.
    let borders: Vec<_> = (0..np).map(|_| world.view_f64(n)).collect();
    let layout = world.build();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        if me == 0 {
            // SEEDED VIOLATIONS — one per discipline rule, one-shot.
            // 1. outside_views: shared data not owned by any view.
            let _ = scratch.get(ctx, 0);
            // 2. unbracketed: a view's data with nothing acquired.
            let _ = borders[1].region.get(ctx, 0);
            {
                // 3. foreign_view: the wrong view held (read view of
                //    border 0, touch border 1).
                let _g = ctx.rview(borders[0].view);
                let _ = borders[1].region.get(ctx, 0);
                // 4. read_only_write: write under a read-only acquisition.
                borders[0].region.set(ctx, 0, 1.0);
            }
        }
        // Disciplined sweeps: publish my border, read my neighbour's.
        let mut acc = 0.0f64;
        for sweep in 0..sweeps {
            ctx.with_view(&borders[me], |r| {
                for i in 0..n {
                    r.set(ctx, i, (me * sweeps + sweep) as f64 + i as f64 * 0.5);
                }
            });
            ctx.flops(n as u64);
            ctx.barrier();
            acc += ctx.with_rview(&borders[(me + 1) % np], |r| r.get(ctx, n - 1));
            ctx.barrier();
        }
        acc
    });
    AppOutcome {
        value: out.results.iter().sum(),
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use vopp_core::{RaceChecker, Violation};

    use super::*;
    use crate::is::{run_is, IsParams, IsVariant};

    fn with_checker(
        np: usize,
        proto: Protocol,
        mode: RacecheckMode,
    ) -> (ClusterConfig, Arc<RaceChecker>) {
        let rc = Arc::new(RaceChecker::new(mode, np));
        let mut cfg = ClusterConfig::lossless(np, proto);
        cfg.racecheck = Some(rc.clone());
        (cfg, rc)
    }

    #[test]
    fn is_racy_reports_exact_count_on_every_lrc_protocol() {
        for proto in [Protocol::LrcD, Protocol::Hlrc, Protocol::ScC] {
            let (cfg, rc) = with_checker(4, proto, RacecheckMode::HappensBefore);
            run_is_racy(&cfg, 600, 2);
            assert_eq!(rc.count(), is_racy_expected(4), "{proto}");
            assert!(
                rc.violations()
                    .iter()
                    .all(|v| matches!(v, Violation::DataRace { .. })),
                "{proto}: every violation must be a data race"
            );
            assert!(!rc.report().is_empty());
        }
    }

    #[test]
    fn sor_racy_reports_each_rule_once_on_both_vc() {
        for proto in [Protocol::VcD, Protocol::VcSd] {
            let (cfg, rc) = with_checker(2, proto, RacecheckMode::ViewDiscipline);
            run_sor_racy(&cfg, 64, 2);
            assert_eq!(rc.count(), sor_racy_expected(), "{proto}");
            let mut labels: Vec<&str> = rc
                .violations()
                .iter()
                .map(|v| match v {
                    Violation::Discipline { rule, .. } => rule.label(),
                    Violation::DataRace { .. } => "race",
                })
                .collect();
            labels.sort_unstable();
            assert_eq!(
                labels,
                [
                    "foreign_view",
                    "outside_views",
                    "read_only_write",
                    "unbracketed"
                ],
                "{proto}"
            );
        }
    }

    #[test]
    fn clean_is_is_silent_across_all_five_cells() {
        let p = IsParams::quick();
        for proto in [Protocol::LrcD, Protocol::Hlrc, Protocol::ScC] {
            let (cfg, rc) = with_checker(4, proto, RacecheckMode::HappensBefore);
            run_is(&cfg, &p, IsVariant::Traditional);
            assert_eq!(
                rc.count(),
                0,
                "{proto}: clean traditional IS must be silent"
            );
        }
        for proto in [Protocol::VcD, Protocol::VcSd] {
            let (cfg, rc) = with_checker(4, proto, RacecheckMode::ViewDiscipline);
            run_is(&cfg, &p, IsVariant::Vopp);
            assert_eq!(rc.count(), 0, "{proto}: clean VOPP IS must be silent");
        }
    }

    #[test]
    fn checker_never_perturbs_results_or_virtual_time() {
        let cfg = ClusterConfig::lossless(2, Protocol::LrcD);
        let plain = run_is_racy(&cfg, 600, 2);
        let (checked_cfg, rc) = with_checker(2, Protocol::LrcD, RacecheckMode::HappensBefore);
        let checked = run_is_racy(&checked_cfg, 600, 2);
        assert!(rc.count() > 0);
        assert_eq!(plain.value, checked.value);
        assert_eq!(plain.stats.time, checked.stats.time);
    }

    #[test]
    fn locked_counter_is_clean_and_unlocked_is_racy() {
        let mut world = WorldBuilder::new();
        let counter = world.alloc_u32(1);
        let layout = world.build();
        for locked in [true, false] {
            let (cfg, rc) = with_checker(2, Protocol::LrcD, RacecheckMode::HappensBefore);
            let layout = layout.clone();
            run_cluster(&cfg, layout, move |ctx| {
                if locked {
                    ctx.lock_acquire(0);
                }
                counter.update(ctx, 0, |x| x + 1);
                if locked {
                    ctx.lock_release(0);
                }
                ctx.barrier();
            });
            if locked {
                assert_eq!(rc.count(), 0, "lock-ordered updates must be silent");
            } else {
                assert_eq!(rc.count(), 1, "unordered counter updates must race");
            }
        }
    }
}
