//! NN: back-propagation neural-network training (paper §3.1, §3.4, §5.4).
//!
//! A two-layer sigmoid MLP is trained by full-batch gradient descent on a
//! synthetic regression set. Each epoch every processor computes the
//! gradient over its training-data shard (local buffers, §3.1); the
//! gradients are combined and the weights updated before the next epoch.
//!
//! * **Traditional** (LRC_d): weights and per-processor gradient slots live
//!   in shared memory ("the errors of the weights are gathered from each
//!   processor"); the packed slots share pages (false sharing) and every
//!   barrier carries their consistency.
//! * **VOPP**: weights live in views read under `acquire_Rview` — the §3.4
//!   optimization that lets every processor read them concurrently; each
//!   processor publishes its gradient through its own view.
//! * **MPI**: gradients are `allreduce`d and every rank updates its own
//!   replica — the paper's MPICH baseline for Table 9.

use std::sync::Arc;

use vopp_core::prelude::*;
use vopp_mpi::{run_mpi, MpiConfig};

use crate::workload::{share, unit_f64};
use crate::AppOutcome;

/// NN problem description.
#[derive(Debug, Clone)]
pub struct NnParams {
    /// Input units.
    pub n_in: usize,
    /// Hidden units.
    pub n_hidden: usize,
    /// Output units.
    pub n_out: usize,
    /// Training samples (sharded over processors).
    pub samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Workload seed.
    pub seed: u64,
}

impl NnParams {
    /// Small instance for tests.
    pub fn quick() -> NnParams {
        NnParams {
            n_in: 6,
            n_hidden: 8,
            n_out: 3,
            samples: 64,
            epochs: 4,
            lr: 0.05,
            seed: 0xA7,
        }
    }

    /// The benchmark instance (scaled; the paper trains for 235 epochs).
    pub fn bench() -> NnParams {
        NnParams {
            n_in: 16,
            n_hidden: 64,
            n_out: 8,
            samples: 4096,
            epochs: 100,
            lr: 0.02,
            seed: 0xA7,
        }
    }

    /// Weight count of layer 1 (including biases).
    pub fn w1_len(&self) -> usize {
        (self.n_in + 1) * self.n_hidden
    }

    /// Weight count of layer 2 (including biases).
    pub fn w2_len(&self) -> usize {
        (self.n_hidden + 1) * self.n_out
    }

    /// Total weight count.
    pub fn w_len(&self) -> usize {
        self.w1_len() + self.w2_len()
    }

    /// Initial weights (identical on every node).
    pub fn init_weights(&self) -> Vec<f64> {
        (0..self.w_len())
            .map(|i| (unit_f64(self.seed ^ 0x11, i as u64) - 0.5) * 0.5)
            .collect()
    }

    /// Input vector of sample `s`.
    pub fn sample_x(&self, s: usize) -> Vec<f64> {
        (0..self.n_in)
            .map(|k| unit_f64(self.seed ^ 0x22, (s * self.n_in + k) as u64))
            .collect()
    }

    /// Target vector of sample `s`.
    pub fn sample_y(&self, s: usize) -> Vec<f64> {
        (0..self.n_out)
            .map(|k| unit_f64(self.seed ^ 0x33, (s * self.n_out + k) as u64))
            .collect()
    }

    /// Approximate flops of one sample's forward+backward pass.
    pub fn flops_per_sample(&self) -> u64 {
        (4 * (self.n_in * self.n_hidden + self.n_hidden * self.n_out)) as u64
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Forward + backward for one sample: adds this sample's gradient into
/// `grad` (laid out like the weights) and returns its squared-error loss.
/// Shared by every variant so the arithmetic is identical.
pub fn backprop(p: &NnParams, w: &[f64], x: &[f64], y: &[f64], grad: &mut [f64]) -> f64 {
    let (ni, nh, no) = (p.n_in, p.n_hidden, p.n_out);
    let (w1, w2) = w.split_at(p.w1_len());
    // Forward.
    let mut h = vec![0.0; nh];
    for j in 0..nh {
        let mut z = w1[ni * nh + j]; // bias
        for (i, xi) in x.iter().enumerate() {
            z += w1[i * nh + j] * xi;
        }
        h[j] = sigmoid(z);
    }
    let mut o = vec![0.0; no];
    for k in 0..no {
        let mut z = w2[nh * no + k]; // bias
        for (j, hj) in h.iter().enumerate() {
            z += w2[j * no + k] * hj;
        }
        o[k] = sigmoid(z);
    }
    // Backward.
    let mut delta_o = vec![0.0; no];
    let mut loss = 0.0;
    for k in 0..no {
        let err = o[k] - y[k];
        loss += 0.5 * err * err;
        delta_o[k] = err * o[k] * (1.0 - o[k]);
    }
    let (g1, g2) = grad.split_at_mut(p.w1_len());
    let mut delta_h = vec![0.0; nh];
    for j in 0..nh {
        let mut s = 0.0;
        for k in 0..no {
            s += w2[j * no + k] * delta_o[k];
            g2[j * no + k] += h[j] * delta_o[k];
        }
        delta_h[j] = s * h[j] * (1.0 - h[j]);
    }
    for k in 0..no {
        g2[nh * no + k] += delta_o[k];
    }
    for (i, xi) in x.iter().enumerate() {
        for j in 0..nh {
            g1[i * nh + j] += xi * delta_h[j];
        }
    }
    for j in 0..nh {
        g1[ni * nh + j] += delta_h[j];
    }
    loss
}

/// Quantization grid for shard gradients: rounding each component to a
/// multiple of 2^-32 makes cross-shard summation *exactly* associative and
/// commutative (sums of < 2^20-magnitude multiples of 2^-32 are exact in
/// f64), so every schedule — sequential, lock order, view order, allreduce
/// tree — produces bit-identical training.
pub const GRAD_QUANTUM: f64 = 4_294_967_296.0; // 2^32

/// Gradient + loss over a shard of samples. The returned gradient is
/// quantized (see [`GRAD_QUANTUM`]).
pub fn shard_gradient(p: &NnParams, w: &[f64], ss: usize, se: usize) -> (Vec<f64>, f64) {
    let mut grad = vec![0.0; p.w_len()];
    let mut loss = 0.0;
    for s in ss..se {
        let x = p.sample_x(s);
        let y = p.sample_y(s);
        loss += backprop(p, w, &x, &y, &mut grad);
    }
    for g in &mut grad {
        *g = (*g * GRAD_QUANTUM).round() / GRAD_QUANTUM;
    }
    (grad, loss)
}

/// Loss over a shard without touching gradients (final evaluation).
pub fn shard_loss(p: &NnParams, w: &[f64], ss: usize, se: usize) -> f64 {
    let mut grad = vec![0.0; p.w_len()];
    let mut loss = 0.0;
    for s in ss..se {
        let x = p.sample_x(s);
        let y = p.sample_y(s);
        loss += backprop(p, w, &x, &y, &mut grad);
    }
    loss
}

/// Sequential reference for `np` processors: final training loss after
/// `epochs` full-batch updates, accumulating the same per-shard quantized
/// gradients the parallel versions exchange. Thanks to the quantization the
/// parallel results are **bit-identical** to this reference regardless of
/// accumulation order.
pub fn nn_reference(p: &NnParams, np: usize) -> f64 {
    let mut w = p.init_weights();
    for _ in 0..p.epochs {
        let mut total = vec![0.0; p.w_len()];
        for q in 0..np {
            let (ss, se) = share(p.samples, q, np);
            let (grad, _) = shard_gradient(p, &w, ss, se);
            for (t, g) in total.iter_mut().zip(&grad) {
                *t += g;
            }
        }
        for (wi, gi) in w.iter_mut().zip(&total) {
            *wi -= p.lr * gi;
        }
    }
    let mut loss = 0.0;
    for q in 0..np {
        let (ss, se) = share(p.samples, q, np);
        loss += shard_loss(p, &w, ss, se);
    }
    loss
}

/// Which program variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NnVariant {
    /// Shared weights + packed per-processor gradient slots (LRC_d).
    Traditional,
    /// Weight read-views + exclusive delta views (VC_d / VC_sd).
    Vopp,
    /// Allreduce baseline.
    Mpi,
}

/// Run NN training; returns the final total loss.
pub fn run_nn(cfg: &ClusterConfig, p: &NnParams, variant: NnVariant) -> AppOutcome<f64> {
    match variant {
        NnVariant::Traditional => {
            assert!(cfg.protocol.is_lrc_family());
            run_nn_traditional(cfg, p)
        }
        NnVariant::Vopp => {
            assert!(cfg.protocol.is_vc());
            run_nn_vopp(cfg, p)
        }
        NnVariant::Mpi => run_nn_mpi(cfg, p),
    }
}

fn run_nn_traditional(cfg: &ClusterConfig, p: &NnParams) -> AppOutcome<f64> {
    let np = cfg.nprocs;
    let mut world = WorldBuilder::new();
    let weights = world.alloc_f64(p.w_len());
    // Per-processor gradient slots, packed: neighbouring slots share pages.
    let slots = world.alloc_f64(np * p.w_len());
    let layout = world.build();
    let p = p.clone();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        let (ss, se) = share(p.samples, me, np);
        // Proc 0 publishes the initial weights.
        if me == 0 {
            weights.write_all(ctx, &p.init_weights());
        }
        ctx.barrier();
        let mut w = vec![0.0; p.w_len()];
        for _ in 0..p.epochs {
            weights.read_into(ctx, 0, &mut w);
            let (grad, _) = shard_gradient(&p, &w, ss, se);
            ctx.flops(p.flops_per_sample() * (se - ss) as u64);
            // "The errors of the weights are gathered from each processor":
            // every processor deposits its gradient in its own slot.
            slots.write_at(ctx, me * p.w_len(), &grad);
            ctx.barrier();
            if me == 0 {
                let mut total = vec![0.0; p.w_len()];
                let mut g = vec![0.0; p.w_len()];
                for q in 0..np {
                    slots.read_into(ctx, q * p.w_len(), &mut g);
                    for (t, gv) in total.iter_mut().zip(&g) {
                        *t += gv;
                    }
                }
                for (wi, ti) in w.iter_mut().zip(&total) {
                    *wi -= p.lr * ti;
                }
                weights.write_all(ctx, &w);
                ctx.flops((np + 2) as u64 * p.w_len() as u64);
            }
            ctx.barrier();
        }
        weights.read_into(ctx, 0, &mut w);
        let loss = shard_loss(&p, &w, ss, se);
        ctx.flops(p.flops_per_sample() * (se - ss) as u64);
        loss
    });
    AppOutcome {
        value: out.results.iter().sum(),
        stats: out.stats,
    }
}

fn run_nn_vopp(cfg: &ClusterConfig, p: &NnParams) -> AppOutcome<f64> {
    let np = cfg.nprocs;
    let mut world = WorldBuilder::new();
    // Per-layer weight views, read concurrently under acquire_Rview (§3.4),
    // and one gradient view per processor (no accumulation chain).
    // Homes follow the primary writer: weights at proc 0, each gradient
    // view at its producer.
    let wv1 = world.view_f64_at(p.w1_len(), 0);
    let wv2 = world.view_f64_at(p.w2_len(), 0);
    let dv: Vec<ViewRegion<f64>> = (0..np).map(|q| world.view_f64_at(p.w_len(), q)).collect();
    let layout = world.build();
    let p = p.clone();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        let (ss, se) = share(p.samples, me, np);
        if me == 0 {
            let w0 = p.init_weights();
            ctx.with_view(&wv1, |r| r.write_all(ctx, &w0[..p.w1_len()]));
            ctx.with_view(&wv2, |r| r.write_all(ctx, &w0[p.w1_len()..]));
        }
        ctx.barrier();
        let mut w = vec![0.0; p.w_len()];
        for _ in 0..p.epochs {
            // Concurrent weight reads (acquire_Rview, §3.4).
            let (head, tail) = w.split_at_mut(p.w1_len());
            ctx.with_rview(&wv1, |r| r.read_into(ctx, 0, head));
            ctx.with_rview(&wv2, |r| r.read_into(ctx, 0, tail));
            let (grad, _) = shard_gradient(&p, &w, ss, se);
            ctx.flops(p.flops_per_sample() * (se - ss) as u64);
            // Publish my gradient through my own view.
            ctx.with_view(&dv[me], |r| r.write_all(ctx, &grad));
            ctx.barrier();
            if me == 0 {
                // Gather the gradients and update the weights.
                let mut total = vec![0.0; p.w_len()];
                let mut g = vec![0.0; p.w_len()];
                for view in dv.iter() {
                    ctx.with_rview(view, |r| r.read_into(ctx, 0, &mut g));
                    for (t, gv) in total.iter_mut().zip(&g) {
                        *t += gv;
                    }
                }
                for (wi, ti) in w.iter_mut().zip(&total) {
                    *wi -= p.lr * ti;
                }
                ctx.with_view(&wv1, |r| r.write_all(ctx, &w[..p.w1_len()]));
                ctx.with_view(&wv2, |r| r.write_all(ctx, &w[p.w1_len()..]));
                ctx.flops((np + 2) as u64 * p.w_len() as u64);
            }
            ctx.barrier();
        }
        let (head, tail) = w.split_at_mut(p.w1_len());
        ctx.with_rview(&wv1, |r| r.read_into(ctx, 0, head));
        ctx.with_rview(&wv2, |r| r.read_into(ctx, 0, tail));
        let loss = shard_loss(&p, &w, ss, se);
        ctx.flops(p.flops_per_sample() * (se - ss) as u64);
        loss
    });
    AppOutcome {
        value: out.results.iter().sum(),
        stats: out.stats,
    }
}

fn run_nn_mpi(cfg: &ClusterConfig, p: &NnParams) -> AppOutcome<f64> {
    let mcfg = MpiConfig {
        nprocs: cfg.nprocs,
        net: cfg.net.clone(),
        cost: cfg.cost.clone(),
    };
    let p = p.clone();
    let np = cfg.nprocs;
    let out = run_mpi(&mcfg, move |c| {
        let me = c.me();
        let (ss, se) = share(p.samples, me, np);
        let mut w = p.init_weights();
        for _ in 0..p.epochs {
            let (grad, _) = shard_gradient(&p, &w, ss, se);
            c.flops(p.flops_per_sample() * (se - ss) as u64);
            let total = c.allreduce_sum_f64(grad);
            for (wi, gi) in w.iter_mut().zip(&total) {
                *wi -= p.lr * gi;
            }
            c.flops(p.w_len() as u64);
        }
        let loss = shard_loss(&p, &w, ss, se);
        c.flops(p.flops_per_sample() * (se - ss) as u64);
        loss
    });
    // Fold MPI transport stats into the common shape.
    let mut nodes = vopp_dsm::NodeStats {
        rexmits: out.rexmits,
        ..Default::default()
    };
    for bd in &out.breakdowns {
        nodes.metrics.breakdown.absorb(bd);
    }
    nodes.metrics.rpc_rtt.absorb(&out.rpc_rtt);
    AppOutcome {
        value: out.results.iter().sum(),
        stats: RunStats {
            time: out.time,
            nprocs: np,
            nodes,
            net: vopp_simnet_stats(out.msgs, out.bytes),
            node_breakdowns: out.breakdowns,
            node_end: out.proc_end,
            crit: None,
        },
    }
}

fn vopp_simnet_stats(msgs: u64, bytes: u64) -> vopp_simnet::NetStats {
    vopp_simnet::NetStats {
        msgs,
        bytes,
        ..Default::default()
    }
}

/// Relative difference helper for loss comparisons (gradient addition order
/// differs between schedules, so equality is only approximate).
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-12)
}

/// Arc wrapper used by benches that share one `NnParams` across threads.
pub type SharedNnParams = Arc<NnParams>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_loss_decreases() {
        let p = NnParams::quick();
        let short = NnParams {
            epochs: 1,
            ..p.clone()
        };
        let long = NnParams { epochs: 8, ..p };
        assert!(nn_reference(&long, 1) < nn_reference(&short, 1));
    }

    #[test]
    fn traditional_bit_exact() {
        let p = NnParams::quick();
        let cfg = ClusterConfig::lossless(4, Protocol::LrcD);
        let out = run_nn(&cfg, &p, NnVariant::Traditional);
        assert_eq!(out.value, nn_reference(&p, 4));
    }

    #[test]
    fn vopp_bit_exact() {
        let p = NnParams::quick();
        for proto in [Protocol::VcD, Protocol::VcSd] {
            let cfg = ClusterConfig::lossless(4, proto);
            let out = run_nn(&cfg, &p, NnVariant::Vopp);
            assert_eq!(out.value, nn_reference(&p, 4), "{proto}");
        }
    }

    #[test]
    fn mpi_bit_exact() {
        let p = NnParams::quick();
        let cfg = ClusterConfig::lossless(4, Protocol::VcSd);
        let out = run_nn(&cfg, &p, NnVariant::Mpi);
        assert_eq!(out.value, nn_reference(&p, 4));
    }

    #[test]
    fn single_proc_exact() {
        let p = NnParams::quick();
        let out = run_nn(
            &ClusterConfig::lossless(1, Protocol::VcSd),
            &p,
            NnVariant::Vopp,
        );
        assert_eq!(out.value, nn_reference(&p, 1));
    }

    #[test]
    fn quantized_sums_commute() {
        // The property the quantization buys: shard sums are exact in any
        // order, so schedules cannot diverge.
        let p = NnParams::quick();
        let w = p.init_weights();
        let (g1, _) = shard_gradient(&p, &w, 0, 32);
        let (g2, _) = shard_gradient(&p, &w, 32, 64);
        for (a, b) in g1.iter().zip(&g2) {
            assert_eq!(a + b, b + a);
            // Exactly representable: adding and subtracting round-trips.
            assert_eq!((a + b) - b, *a);
        }
    }

    #[test]
    fn vcsd_has_no_diff_requests() {
        let p = NnParams::quick();
        let out = run_nn(
            &ClusterConfig::lossless(3, Protocol::VcSd),
            &p,
            NnVariant::Vopp,
        );
        assert_eq!(out.stats.diff_requests(), 0);
    }
}
