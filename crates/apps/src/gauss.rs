//! Gauss: iterative in-place matrix processing (paper §3.1, §5.2).
//!
//! The paper's Gauss applies "Gaussian elimination steps" to a large matrix
//! over many iterations, with each processor working on its own share; its
//! data is "read in by individual processors and accessed by the same
//! processor until the end of the program" (§3.1). We realize that
//! structure as repeated block-local Gauss–Seidel sweeps over a row-block
//! partitioned matrix: all reads and writes stay within the processor's
//! block, so the computation itself needs no communication at all.
//!
//! * **Traditional** (LRC_d): the matrix lives in shared memory and is
//!   processed **in place**, with the original program's barrier after
//!   every sweep. Every sweep re-dirties the whole block (twin + diff per
//!   page per interval), each barrier centrally exchanges thousands of
//!   write notices, and block boundaries share pages (rows are not a whole
//!   number of pages), so boundary pages ping-pong between neighbours —
//!   the full false-sharing effect of §3.1.
//! * **VOPP** (VC_d/VC_sd): the paper's restructuring — each processor
//!   copies its view into a local buffer once, iterates locally, and copies
//!   back at the end; the per-sweep barriers disappear because views
//!   provide the exclusion (§3.2). Processor 0 finally reads all views for
//!   output under `acquire_Rview`.

use vopp_core::prelude::*;

use crate::workload::{share, unit_f64};
use crate::AppOutcome;

/// Gauss problem description.
#[derive(Debug, Clone)]
pub struct GaussParams {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns (sized so rows are not a whole number of pages —
    /// block boundaries share pages in the traditional layout).
    pub cols: usize,
    /// Sweeps over the matrix.
    pub iters: usize,
    /// Workload seed.
    pub seed: u64,
}

impl GaussParams {
    /// Small instance for tests.
    pub fn quick() -> GaussParams {
        GaussParams {
            rows: 48,
            cols: 20,
            iters: 5,
            seed: 0x6A,
        }
    }

    /// The benchmark instance (scaled from the paper's 2048x2048; see
    /// EXPERIMENTS.md).
    pub fn bench() -> GaussParams {
        GaussParams {
            rows: 1024,
            cols: 768,
            iters: 64,
            seed: 0x6A,
        }
    }

    /// Initial matrix value at `(i, j)`.
    #[inline]
    pub fn m0(&self, i: usize, j: usize) -> f64 {
        unit_f64(self.seed, (i * self.cols + j) as u64)
    }

    /// Checksum weight.
    #[inline]
    fn w(&self, idx: usize) -> f64 {
        unit_f64(self.seed ^ 0xC5C5, idx as u64)
    }

    /// Initial rows `[rs, re)` as a dense row-major block.
    pub fn init_rows(&self, rs: usize, re: usize) -> Vec<f64> {
        let mut m = Vec::with_capacity((re - rs) * self.cols);
        for i in rs..re {
            for j in 0..self.cols {
                m.push(self.m0(i, j));
            }
        }
        m
    }
}

/// One in-place Gauss–Seidel sweep over a block of rows, with the stencil
/// clamped to the block (the computation is block-local by construction).
/// Shared by the reference and both parallel versions.
pub fn sweep_block(blk: &mut [f64], nrows: usize, cols: usize) {
    debug_assert_eq!(blk.len(), nrows * cols);
    for i in 0..nrows {
        for j in 0..cols {
            let up = blk[i.saturating_sub(1) * cols + j];
            let down = blk[(i + 1).min(nrows - 1) * cols + j];
            let left = blk[i * cols + j.saturating_sub(1)];
            let right = blk[i * cols + (j + 1).min(cols - 1)];
            blk[i * cols + j] = 0.25 * (up + down + left + right);
        }
    }
}

fn checksum(p: &GaussParams, m: &[f64]) -> f64 {
    m.iter().enumerate().map(|(i, v)| v * p.w(i)).sum()
}

/// Sequential reference for `np` processors: the same block-local sweeps.
pub fn gauss_reference(p: &GaussParams, np: usize) -> f64 {
    let mut full = vec![0.0; p.rows * p.cols];
    for q in 0..np {
        let (rs, re) = share(p.rows, q, np);
        let mut blk = p.init_rows(rs, re);
        for _ in 0..p.iters {
            sweep_block(&mut blk, re - rs, p.cols);
        }
        full[rs * p.cols..re * p.cols].copy_from_slice(&blk);
    }
    checksum(p, &full)
}

/// Which program variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaussVariant {
    /// In-place shared-memory processing with per-sweep barriers (LRC_d).
    Traditional,
    /// Local buffers + per-processor views, no per-sweep sync (VC_d/VC_sd).
    Vopp,
}

/// Run Gauss on a simulated cluster; returns proc 0's checksum of the final
/// matrix.
pub fn run_gauss(cfg: &ClusterConfig, p: &GaussParams, variant: GaussVariant) -> AppOutcome<f64> {
    match variant {
        GaussVariant::Traditional => {
            assert!(cfg.protocol.is_lrc_family());
            run_gauss_traditional(cfg, p)
        }
        GaussVariant::Vopp => {
            assert!(cfg.protocol.is_vc());
            run_gauss_vopp(cfg, p)
        }
    }
}

fn run_gauss_traditional(cfg: &ClusterConfig, p: &GaussParams) -> AppOutcome<f64> {
    let np = cfg.nprocs;
    let c = p.cols;
    let mut world = WorldBuilder::new();
    // The whole matrix, packed: block boundaries fall inside pages.
    let matrix = world.alloc_f64(p.rows * c);
    let layout = world.build();
    let p = p.clone();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        let (rs, re) = share(p.rows, me, np);
        let nrows = re - rs;
        // Each processor reads in its share of the input.
        let init = p.init_rows(rs, re);
        matrix.write_at(ctx, rs * c, &init);
        ctx.barrier();
        let mut blk = vec![0.0; nrows * c];
        for _ in 0..p.iters {
            // Process the block in place in shared memory: read it, sweep,
            // write it back. Boundary pages were re-written by neighbours
            // in the previous sweep, so reading them faults (false sharing).
            matrix.read_into(ctx, rs * c, &mut blk);
            sweep_block(&mut blk, nrows, c);
            ctx.flops((4 * nrows * c) as u64);
            matrix.write_at(ctx, rs * c, &blk);
            // The original program's per-sweep barrier (used for access
            // exclusion, §3.2) — under LRC it also maintains consistency.
            ctx.barrier();
        }
        if me == 0 {
            let mut m = vec![0.0; p.rows * c];
            matrix.read_into(ctx, 0, &mut m);
            ctx.flops(2 * (p.rows * c) as u64);
            checksum(&p, &m)
        } else {
            0.0
        }
    });
    AppOutcome {
        value: out.results[0],
        stats: out.stats,
    }
}

fn run_gauss_vopp(cfg: &ClusterConfig, p: &GaussParams) -> AppOutcome<f64> {
    let np = cfg.nprocs;
    let c = p.cols;
    let mut world = WorldBuilder::new();
    // One view per processor block (views never share pages).
    let views: Vec<ViewRegion<f64>> = (0..np)
        .map(|q| {
            let (qs, qe) = share(p.rows, q, np);
            world.view_f64((qe - qs) * c)
        })
        .collect();
    let layout = world.build();
    let p = p.clone();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        let (rs, re) = share(p.rows, me, np);
        let nrows = re - rs;
        // Read in the input through the view, into the local buffer (§3.1).
        let mut blk = p.init_rows(rs, re);
        ctx.with_view(&views[me], |r| r.write_all(ctx, &blk));
        ctx.copy_cost((nrows * c * 8) as u64);
        ctx.barrier();
        // Iterate entirely on the local buffer: no synchronization needed —
        // the per-sweep barriers of the traditional program are gone (§3.2).
        for _ in 0..p.iters {
            sweep_block(&mut blk, nrows, c);
            ctx.flops((4 * nrows * c) as u64);
        }
        // Copy the result back into the view.
        ctx.with_view(&views[me], |r| r.write_all(ctx, &blk));
        ctx.copy_cost((nrows * c * 8) as u64);
        ctx.barrier();
        if me == 0 {
            // Read and print all views (paper's epilogue).
            let mut m = vec![0.0; p.rows * c];
            for (q, view) in views.iter().enumerate() {
                let (qs, qe) = share(p.rows, q, np);
                ctx.with_rview(view, |r| {
                    r.read_into(ctx, 0, &mut m[qs * c..qe * c]);
                });
            }
            ctx.flops(2 * (p.rows * c) as u64);
            checksum(&p, &m)
        } else {
            0.0
        }
    });
    AppOutcome {
        value: out.results[0],
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_contracting() {
        // Values stay within the initial range (averaging).
        let p = GaussParams::quick();
        let mut blk = p.init_rows(0, p.rows);
        for _ in 0..20 {
            sweep_block(&mut blk, p.rows, p.cols);
        }
        assert!(blk.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
    }

    #[test]
    fn reference_depends_on_partition() {
        let p = GaussParams::quick();
        // Block-local sweeps legitimately differ per processor count.
        assert_ne!(gauss_reference(&p, 2), gauss_reference(&p, 4));
        assert_eq!(gauss_reference(&p, 4), gauss_reference(&p, 4));
    }

    #[test]
    fn traditional_matches_reference_exactly() {
        let p = GaussParams::quick();
        for np in [1, 2, 4] {
            let cfg = ClusterConfig::lossless(np, Protocol::LrcD);
            let out = run_gauss(&cfg, &p, GaussVariant::Traditional);
            assert_eq!(out.value, gauss_reference(&p, np), "np={np}");
        }
    }

    #[test]
    fn vopp_matches_reference_exactly() {
        let p = GaussParams::quick();
        for proto in [Protocol::VcD, Protocol::VcSd] {
            for np in [1, 3, 4] {
                let cfg = ClusterConfig::lossless(np, proto);
                let out = run_gauss(&cfg, &p, GaussVariant::Vopp);
                assert_eq!(out.value, gauss_reference(&p, np), "{proto} np={np}");
            }
        }
    }

    #[test]
    fn false_sharing_only_in_traditional() {
        let p = GaussParams::quick();
        let tr = run_gauss(
            &ClusterConfig::lossless(4, Protocol::LrcD),
            &p,
            GaussVariant::Traditional,
        );
        let vc = run_gauss(
            &ClusterConfig::lossless(4, Protocol::VcSd),
            &p,
            GaussVariant::Vopp,
        );
        // Boundary pages ping-pong under LRC; VOPP never faults.
        assert!(tr.stats.diff_requests() > 0);
        assert_eq!(vc.stats.diff_requests(), 0);
        // §3.2: the VOPP program drops the per-sweep barriers.
        assert!(vc.stats.barriers() < tr.stats.barriers());
    }
}
