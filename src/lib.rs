//! Facade crate: re-exports the whole VOPP reproduction workspace.
pub use vopp_apps as apps;
pub use vopp_core as core;
pub use vopp_core::prelude;
pub use vopp_dsm as dsm;
pub use vopp_mpi as mpi;
pub use vopp_page as page;
pub use vopp_sim as sim;
pub use vopp_simnet as simnet;
