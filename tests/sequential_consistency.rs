//! Cross-crate integration tests: sequential-consistency litmus patterns on
//! all three DSM systems (the paper proves VC guarantees SC for VOPP
//! programs; LRC guarantees it for data-race-free programs).

use vopp_repro::core::prelude::*;
use vopp_repro::core::VoppExt;

/// Message passing litmus: writer publishes data then flag; reader who sees
/// the flag must see the data. Under VOPP both live in one view, so view
/// exclusivity orders them.
#[test]
fn vopp_message_passing_litmus() {
    for proto in [Protocol::VcD, Protocol::VcSd] {
        let mut world = WorldBuilder::new();
        let v = world.view_u32(2);
        let out = run_cluster(&ClusterConfig::lossless(2, proto), world.build(), |ctx| {
            if ctx.me() == 0 {
                ctx.with_view(&v, |r| {
                    r.set(ctx, 0, 42); // data
                    r.set(ctx, 1, 1); // flag
                });
                0
            } else {
                // Spin on the flag through repeated read-view acquisitions.
                loop {
                    let (flag, data) = ctx.with_rview(&v, |r| (r.get(ctx, 1), r.get(ctx, 0)));
                    if flag == 1 {
                        return data;
                    }
                    ctx.compute_ns(100_000.0);
                }
            }
        });
        assert_eq!(out.results[1], 42, "{proto}: stale data behind flag");
    }
}

/// Store buffering litmus under locks on LRC: both critical sections are
/// totally ordered by the lock, so at least one thread sees the other's
/// write.
#[test]
fn lrc_store_buffering_with_locks() {
    let mut world = WorldBuilder::new();
    let x = world.alloc_u32(1);
    let y = world.alloc_u32(1);
    let out = run_cluster(
        &ClusterConfig::lossless(2, Protocol::LrcD),
        world.build(),
        move |ctx| {
            ctx.lock_acquire(9);
            let seen = if ctx.me() == 0 {
                x.set(ctx, 0, 1);
                y.get(ctx, 0)
            } else {
                y.set(ctx, 0, 1);
                x.get(ctx, 0)
            };
            ctx.lock_release(9);
            seen
        },
    );
    assert!(
        out.results[0] == 1 || out.results[1] == 1,
        "lock-ordered critical sections: someone must see the other's write"
    );
}

/// Coherence: a single location modified in view order is seen to only move
/// forward by every reader.
#[test]
fn vopp_single_location_coherence() {
    let mut world = WorldBuilder::new();
    let v = world.view_u32(1);
    let out = run_cluster(
        &ClusterConfig::lossless(4, Protocol::VcSd),
        world.build(),
        |ctx| {
            let mut last = 0;
            for _ in 0..20 {
                if ctx.me() % 2 == 0 {
                    ctx.with_view(&v, |r| r.update(ctx, 0, |x| x + 1));
                } else {
                    let now = ctx.with_rview(&v, |r| r.get(ctx, 0));
                    assert!(now >= last, "value went backwards: {now} < {last}");
                    last = now;
                }
            }
            ctx.barrier();
            ctx.with_rview(&v, |r| r.get(ctx, 0))
        },
    );
    // Two writers, 20 increments each.
    assert!(out.results.iter().all(|&r| r == 40));
}

/// Barrier-phased writes are visible across all protocols and all nodes.
#[test]
fn barrier_phase_visibility_all_protocols() {
    // Traditional on LRC.
    {
        let mut world = WorldBuilder::new();
        let arr = world.alloc_u32(64);
        let out = run_cluster(
            &ClusterConfig::lossless(8, Protocol::LrcD),
            world.build(),
            move |ctx| {
                for phase in 0..4u32 {
                    for i in 0..8 {
                        if i == ctx.me() {
                            arr.set(ctx, ctx.me() * 8 + phase as usize, phase + 1);
                        }
                    }
                    ctx.barrier();
                    // Everyone verifies everyone's phase write.
                    for q in 0..8 {
                        assert_eq!(arr.get(ctx, q * 8 + phase as usize), phase + 1);
                    }
                    ctx.barrier();
                }
                true
            },
        );
        assert!(out.results.iter().all(|&r| r));
    }
    // VOPP on both VC systems.
    for proto in [Protocol::VcD, Protocol::VcSd] {
        let mut world = WorldBuilder::new();
        let views: Vec<_> = (0..8).map(|q| world.view_u32_at(4, q)).collect();
        let out = run_cluster(&ClusterConfig::lossless(8, proto), world.build(), |ctx| {
            for phase in 0..4u32 {
                ctx.with_view(&views[ctx.me()], |r| r.set(ctx, phase as usize, phase + 1));
                ctx.barrier();
                for view in views.iter() {
                    let got = ctx.with_rview(view, |r| r.get(ctx, phase as usize));
                    assert_eq!(got, phase + 1);
                }
                ctx.barrier();
            }
            true
        });
        assert!(out.results.iter().all(|&r| r));
    }
}

/// Transitivity: A -> B -> C through two different views.
#[test]
fn vopp_transitive_visibility() {
    let mut world = WorldBuilder::new();
    let va = world.view_u32(1);
    let vb = world.view_u32(1);
    let out = run_cluster(
        &ClusterConfig::lossless(3, Protocol::VcSd),
        world.build(),
        |ctx| match ctx.me() {
            0 => {
                ctx.with_view(&va, |r| r.set(ctx, 0, 7));
                ctx.barrier();
                ctx.barrier();
                0
            }
            1 => {
                ctx.barrier();
                let a = ctx.with_rview(&va, |r| r.get(ctx, 0));
                ctx.with_view(&vb, |r| r.set(ctx, 0, a * 2));
                ctx.barrier();
                a
            }
            _ => {
                ctx.barrier();
                ctx.barrier();
                ctx.with_rview(&vb, |r| r.get(ctx, 0))
            }
        },
    );
    assert_eq!(out.results, vec![0, 7, 14]);
}
