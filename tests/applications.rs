//! Cross-crate integration tests: every application agrees with its
//! sequential reference on every DSM system and several cluster sizes, on
//! both lossless and lossy networks.

use vopp_repro::apps::gauss::{gauss_reference, run_gauss, GaussParams, GaussVariant};
use vopp_repro::apps::is::{is_reference, run_is, IsParams, IsVariant};
use vopp_repro::apps::nn::{nn_reference, run_nn, NnParams, NnVariant};
use vopp_repro::apps::sor::{run_sor, sor_reference, SorParams, SorVariant};
use vopp_repro::core::prelude::*;

#[test]
fn is_all_systems_all_variants() {
    let p = IsParams::quick();
    for np in [2, 5, 8] {
        let t = run_is(
            &ClusterConfig::lossless(np, Protocol::LrcD),
            &p,
            IsVariant::Traditional,
        );
        assert_eq!(t.value, is_reference(&p, np, false), "trad np={np}");
        for proto in [Protocol::VcD, Protocol::VcSd] {
            let v = run_is(&ClusterConfig::lossless(np, proto), &p, IsVariant::Vopp);
            assert_eq!(v.value, is_reference(&p, np, false), "{proto} np={np}");
            let lb = run_is(&ClusterConfig::lossless(np, proto), &p, IsVariant::VoppLb);
            assert_eq!(lb.value, is_reference(&p, np, true), "{proto} lb np={np}");
        }
    }
}

#[test]
fn gauss_all_systems() {
    let p = GaussParams::quick();
    for np in [2, 6] {
        let t = run_gauss(
            &ClusterConfig::lossless(np, Protocol::LrcD),
            &p,
            GaussVariant::Traditional,
        );
        assert_eq!(t.value, gauss_reference(&p, np));
        for proto in [Protocol::VcD, Protocol::VcSd] {
            let v = run_gauss(&ClusterConfig::lossless(np, proto), &p, GaussVariant::Vopp);
            assert_eq!(v.value, gauss_reference(&p, np), "{proto} np={np}");
        }
    }
}

#[test]
fn sor_all_systems() {
    let p = SorParams::quick();
    for np in [2, 5] {
        let t = run_sor(
            &ClusterConfig::lossless(np, Protocol::LrcD),
            &p,
            SorVariant::Traditional,
        );
        assert_eq!(t.value, sor_reference(&p));
        for proto in [Protocol::VcD, Protocol::VcSd] {
            let v = run_sor(&ClusterConfig::lossless(np, proto), &p, SorVariant::Vopp);
            assert_eq!(v.value, sor_reference(&p), "{proto} np={np}");
        }
    }
}

#[test]
fn nn_all_systems_bit_exact() {
    let p = NnParams::quick();
    for np in [2, 4] {
        let expect = nn_reference(&p, np);
        let t = run_nn(
            &ClusterConfig::lossless(np, Protocol::LrcD),
            &p,
            NnVariant::Traditional,
        );
        assert_eq!(t.value, expect);
        for proto in [Protocol::VcD, Protocol::VcSd] {
            let v = run_nn(&ClusterConfig::lossless(np, proto), &p, NnVariant::Vopp);
            assert_eq!(v.value, expect, "{proto} np={np}");
        }
        let m = run_nn(
            &ClusterConfig::lossless(np, Protocol::VcSd),
            &p,
            NnVariant::Mpi,
        );
        assert_eq!(m.value, expect);
    }
}

#[test]
fn traditional_apps_run_on_home_based_lrc() {
    // The HLRC extension must compute identical results on the paper's
    // traditional programs.
    let p = IsParams::quick();
    let is = run_is(
        &ClusterConfig::lossless(4, Protocol::Hlrc),
        &p,
        IsVariant::Traditional,
    );
    assert_eq!(is.value, is_reference(&p, 4, false));

    let g = GaussParams::quick();
    let gauss = run_gauss(
        &ClusterConfig::lossless(4, Protocol::Hlrc),
        &g,
        GaussVariant::Traditional,
    );
    assert_eq!(gauss.value, gauss_reference(&g, 4));

    let s = SorParams::quick();
    let sor = run_sor(
        &ClusterConfig::lossless(4, Protocol::Hlrc),
        &s,
        SorVariant::Traditional,
    );
    assert_eq!(sor.value, sor_reference(&s));

    let n = NnParams::quick();
    let nn = run_nn(
        &ClusterConfig::lossless(4, Protocol::Hlrc),
        &n,
        NnVariant::Traditional,
    );
    assert_eq!(nn.value, nn_reference(&n, 4));
}

#[test]
fn applications_survive_lossy_network() {
    // A harsh network: results must still be exact, with retransmissions.
    let mut total_rexmits = 0;
    let mut cfg = ClusterConfig::new(4, Protocol::VcSd);
    cfg.net.base_drop_prob = 0.02;
    cfg.net.seed = 1234;

    let p = IsParams::quick();
    let is = run_is(&cfg, &p, IsVariant::Vopp);
    assert_eq!(is.value, is_reference(&p, 4, false));
    total_rexmits += is.stats.rexmits();

    let g = GaussParams::quick();
    let gauss = run_gauss(&cfg, &g, GaussVariant::Vopp);
    assert_eq!(gauss.value, gauss_reference(&g, 4));
    total_rexmits += gauss.stats.rexmits();

    let mut lcfg = ClusterConfig::new(4, Protocol::LrcD);
    lcfg.net.base_drop_prob = 0.02;
    lcfg.net.seed = 99;
    let s = SorParams::quick();
    let sor = run_sor(&lcfg, &s, SorVariant::Traditional);
    assert_eq!(sor.value, sor_reference(&s));
    total_rexmits += sor.stats.rexmits();

    assert!(
        total_rexmits > 0,
        "2% loss must force retransmissions somewhere"
    );
}

#[test]
fn stats_invariants_across_apps() {
    // Cross-protocol invariants the paper's tables rely on.
    let p = IsParams::quick();
    let lrc = run_is(
        &ClusterConfig::lossless(4, Protocol::LrcD),
        &p,
        IsVariant::Traditional,
    );
    let vcd = run_is(
        &ClusterConfig::lossless(4, Protocol::VcD),
        &p,
        IsVariant::Vopp,
    );
    let vcsd = run_is(
        &ClusterConfig::lossless(4, Protocol::VcSd),
        &p,
        IsVariant::Vopp,
    );

    // Traditional programs acquire nothing; VOPP programs acquire a lot.
    assert_eq!(lrc.stats.acquires(), 0);
    assert!(vcd.stats.acquires() > 0);
    assert_eq!(vcd.stats.acquires(), vcsd.stats.acquires());
    // The update protocol never issues diff requests.
    assert_eq!(vcsd.stats.diff_requests(), 0);
    assert!(vcd.stats.diff_requests() > 0);
    // Same program on both VC systems: same barrier count.
    assert_eq!(vcd.stats.barriers(), vcsd.stats.barriers());
    // VC_sd needs fewer messages than VC_d (integration + piggy-backing).
    assert!(vcsd.stats.num_msgs() < vcd.stats.num_msgs());
}

#[test]
fn runs_deterministic_per_seed_across_apps() {
    let p = SorParams::quick();
    let run = |seed: u64| {
        let mut cfg = ClusterConfig::new(4, Protocol::VcSd);
        cfg.net.base_drop_prob = 0.01;
        cfg.net.seed = seed;
        let out = run_sor(&cfg, &p, SorVariant::Vopp);
        (
            out.value,
            out.stats.time,
            out.stats.num_msgs(),
            out.stats.rexmits(),
        )
    };
    assert_eq!(run(5), run(5));
    let (v7, t7, _, _) = run(7);
    let (v5, t5, _, _) = run(5);
    // Same verified answer regardless of network seed, but timings differ
    // when losses land differently.
    assert_eq!(v5, v7);
    let _ = (t5, t7);
}
